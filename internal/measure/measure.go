// Package measure implements the paper's §3 measurement methodology: the
// combined classification heuristics for third-party DNS providers, CAs and
// CDNs (TLD matching + SAN lists + SOA comparison + provider concentration),
// redundancy detection via entity grouping, OCSP-stapling observation, and
// the inter-service dependency measurements (CDN→DNS, CA→DNS, CA→CDN).
//
// The pipeline consumes only what a real measurement sees: DNS responses via
// a resolver, served certificates, landing pages, and a CNAME-suffix→CDN
// map. It never touches generator ground truth; validation against planted
// labels lives in the test suite, mirroring the paper's manually verified
// 100-site samples.
//
// Structurally the pipeline is a staged runtime: pass 1 resolves every
// site's NS set (the concentration signal needs the full population), pass 2
// visits each site exactly once and dispatches it through the registered
// Stage classifiers (DNS, CA, CDN), and pass 3 measures provider-to-provider
// dependencies. All fan-out goes through the shared internal/conc pool, and
// Config.ErrorPolicy decides whether a per-site failure aborts the run
// (conc.FailFast) or yields an uncharacterized SiteResult plus a recorded
// error in Results.Diagnostics (conc.Collect) — the paper itself tolerates
// dead domains and partial data ("13.5% uncharacterized pairs").
package measure

import (
	"context"
	"fmt"
	"sort"
	"time"

	"depscope/internal/certs"
	"depscope/internal/chain"
	"depscope/internal/conc"
	"depscope/internal/core"
	"depscope/internal/publicsuffix"
	"depscope/internal/resolver"
	"depscope/internal/telemetry"
	"depscope/internal/webpage"
)

// CertSource provides the certificate served by a host, nil when the host
// does not speak HTTPS.
type CertSource interface {
	Get(host string) *certs.Certificate
}

// PageSource provides landing pages.
type PageSource interface {
	Page(site string) *webpage.Page
}

// Config parameterizes a measurement run.
type Config struct {
	// Resolver answers DNS questions.
	Resolver *resolver.Resolver
	// Certs provides served certificates.
	Certs CertSource
	// Pages provides landing pages.
	Pages PageSource
	// CDNMap is the CNAME→CDN map.
	CDNMap CDNMap
	// ConcentrationThreshold is the §3.1 concentration cutoff; zero means 50.
	ConcentrationThreshold int
	// Workers bounds concurrency; any value < 1 means GOMAXPROCS.
	Workers int
	// ErrorPolicy decides what a per-site measurement failure does. The zero
	// value, conc.FailFast, aborts the run on the first error — the right
	// default for the deterministic in-process world, where any error is a
	// bug. conc.Collect instead marks the affected site uncharacterized,
	// records the error in Results.Diagnostics, and keeps going — the right
	// mode for live measurements over real resolvers, which hit plenty of
	// dead domains (this generalizes the former SkipUnresolvable flag).
	ErrorPolicy conc.Policy
	// DisableSAN / DisableSOA / DisableConcentration switch individual rules
	// of the combined DNS heuristic off, for the ablation experiments that
	// quantify each rule's contribution.
	DisableSAN, DisableSOA, DisableConcentration bool

	// Chains, when non-nil and enabled (MaxDepth > 1), registers the chain
	// classifier stage: each page's resource-inclusion tree is reduced to
	// depth-annotated vendor references (SiteResult.Chains) and every
	// discovered vendor's own DNS/CDN arrangement is resolved into
	// Results.ResourceToDNS / ResourceToCDN. Nil or disabled leaves the
	// pipeline byte-identical to the pre-chain behavior.
	Chains *chain.Config

	// Checkpoint, when non-nil, resumes from previously recorded progress:
	// pass-1 NS sets and pass-2 site results whose fingerprints still match
	// are reused instead of re-measured, and the recorded resolver cache is
	// seeded back. See checkpoint.go.
	Checkpoint *Checkpoint
	// Fingerprints maps site → content fingerprint of everything the
	// measurement can observe about it (ecosystem.World.SiteFingerprints).
	// A checkpointed entry is reused only when its recorded fingerprint
	// equals the current one; with no fingerprints at all, entries match on
	// equal empty strings — a plain same-universe resume.
	Fingerprints map[string]string
	// OnCheckpoint, when set, receives progress snapshots: after pass 1,
	// every CheckpointEvery site completions during pass 2, and at the end
	// of the run. The callback owns the snapshot (typically SaveCheckpoint);
	// a returned error aborts the run.
	OnCheckpoint func(*Checkpoint) error
	// CheckpointEvery is the site-completion interval between OnCheckpoint
	// emissions during pass 2; values < 1 mean len(sites)/10, at least 200.
	CheckpointEvery int
	// CheckpointLabel tags emitted checkpoints and guards resume: a prior
	// checkpoint with a different label is refused.
	CheckpointLabel string
}

// Classification is a per-pair verdict.
type Classification int

// Per-pair verdicts.
const (
	Unknown Classification = iota
	Private
	Third
)

// String names the classification.
func (c Classification) String() string {
	switch c {
	case Private:
		return "private"
	case Third:
		return "third-party"
	}
	return "unknown"
}

// NSPair is one (site, nameserver) classification with its evidence, kept
// for the validation experiments.
type NSPair struct {
	Host     string
	Class    Classification
	Evidence string // which rule fired: "tld", "san", "soa", "concentration"
	Entity   string // same-entity key used for redundancy grouping
}

// SiteDNS is the DNS measurement of one website.
type SiteDNS struct {
	Class core.DepClass
	// Providers are the measured third-party provider identities
	// (registrable domains of the nameserver entities).
	Providers []string
	Pairs     []NSPair
}

// SiteCA is the certificate measurement of one website.
type SiteCA struct {
	HTTPS   bool
	Class   core.DepClass // ClassNone when no HTTPS
	CAName  string        // measured CA identity (issuer org registrable domain)
	Third   bool
	Stapled bool
	// RevocationHosts are the OCSP/CDP hosts seen in the certificate.
	RevocationHosts []string
}

// SiteCDN is the CDN measurement of one website.
type SiteCDN struct {
	UsesCDN bool
	Class   core.DepClass // ClassNone when no CDN observed
	// Third lists third-party CDN names; PrivateCDNs lists private ones.
	Third       []string
	PrivateCDNs []string
	// InternalHosts are the page hosts attributed to the site itself.
	InternalHosts []string
}

// SiteResult bundles one site's measurements.
type SiteResult struct {
	Site string
	Rank int
	DNS  SiteDNS
	CA   SiteCA
	CDN  SiteCDN
	// Chains lists the site's implicitly-trusted vendors with their minimum
	// inclusion depth; nil unless the run had chains enabled. omitempty
	// keeps chains-off serializations (checkpoints, the pinning hash)
	// byte-identical to pre-chain ones.
	Chains []ChainRef `json:",omitempty"`
}

// Results is a full measurement run.
type Results struct {
	Sites []SiteResult
	// NSConcentration maps nameserver registrable domain → number of sites
	// observed using it (the §3.1 concentration signal).
	NSConcentration map[string]int
	// PairStats accounts for the (website, nameserver) pairs, as the paper
	// reports them ("155,151 distinct pairs... 13.5% uncharacterized").
	PairStats PairStats
	// EvidenceCounts tallies which rule classified each pair ("tld", "san",
	// "soa", "concentration") — a diagnostic for the heuristic's anatomy.
	EvidenceCounts map[string]int
	// Inter-service measurements, keyed by provider identity.
	CDNToDNS map[string]ProviderDep
	CAToDNS  map[string]ProviderDep
	CAToCDN  map[string]ProviderDep
	// ResourceToDNS / ResourceToCDN are the chain inter-service
	// measurements: each implicitly-trusted vendor's own DNS and CDN
	// arrangement. Nil unless the run had chains enabled.
	ResourceToDNS map[string]ProviderDep `json:",omitempty"`
	ResourceToCDN map[string]ProviderDep `json:",omitempty"`
	// Diagnostics reports per-stage progress counters, resolver cache
	// statistics and — under conc.Collect — the recorded per-site errors.
	Diagnostics Diagnostics
	// Telemetry is a snapshot of the process-wide telemetry registry taken
	// as the run completed: the same counters and latency histograms
	// depserver serves at /metrics and depscope prints with -telemetry,
	// handed to library users programmatically. The registry is cumulative
	// across the process (concurrent snapshot runs share it), so treat the
	// values as "as of the end of this run", not per-run deltas. Telemetry
	// never feeds back into measurement: no field above depends on it, and
	// the pinning test holds byte-identical with telemetry recording.
	Telemetry telemetry.Snapshot
}

// PairStats summarizes (website, nameserver) pair classification.
type PairStats struct {
	Total           int
	Private         int
	Third           int
	Uncharacterized int
}

// UncharacterizedFrac is the fraction of pairs no heuristic classified.
func (p PairStats) UncharacterizedFrac() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Uncharacterized) / float64(p.Total)
}

// ProviderDep is a measured provider→provider arrangement.
type ProviderDep struct {
	Provider string
	Service  core.Service // the depended-upon service
	Class    core.DepClass
	// Deps are the measured upstream provider identities.
	Deps []string
}

// Run executes the full pipeline over the ranked site list.
func Run(ctx context.Context, sites []string, cfg Config) (*Results, error) {
	if cfg.Resolver == nil {
		return nil, fmt.Errorf("measure: Config.Resolver is required")
	}
	if cfg.ConcentrationThreshold == 0 {
		cfg.ConcentrationThreshold = 50
	}
	defer telemetry.StartSpan("measure.run").End()
	m := &measurer{
		cfg:    cfg,
		cdn:    cfg.CDNMap.compile(),
		stages: defaultStages(),
		diag:   newDiagCollector(),
	}
	if m.chainEnabled() {
		m.stages = append(m.stages, chainStage{})
	}
	m.initTelemetry()
	ck, err := newCkptRun(&cfg, len(sites))
	if err != nil {
		return nil, err
	}

	// Pass 1: NS sets for every site (needed for the concentration signal).
	resolvePass := telemetry.StartSpan("measure.resolve_pass")
	nsSets, err := m.collectNS(ctx, sites, ck)
	resolvePass.End()
	if err != nil {
		return nil, err
	}
	if ck != nil {
		for i := range sites {
			ck.recordNS(sites[i], nsSets[i])
		}
		if err := ck.emitNow(); err != nil {
			return nil, err
		}
	}
	concSignal := concentration(nsSets)

	res := &Results{
		NSConcentration: concSignal,
		CDNToDNS:        make(map[string]ProviderDep),
		CAToDNS:         make(map[string]ProviderDep),
		CAToCDN:         make(map[string]ProviderDep),
	}

	// Pass 2: per-site classification — one visit per site, dispatched
	// through every registered stage.
	sitePass := telemetry.StartSpan("measure.site_pass")
	res.Sites = make([]SiteResult, len(sites))
	err = conc.ForEach(ctx, len(sites), cfg.Workers, conc.FailFast, func(ctx context.Context, i int) error {
		if ck != nil {
			if prior := ck.priorResult(sites[i]); prior != nil {
				// Reuse the checkpointed result, re-anchoring identity and
				// rank in case the edited universe reordered the list.
				res.Sites[i] = *prior
				res.Sites[i].Site, res.Sites[i].Rank = sites[i], i+1
				ckptReused.Inc()
				return ck.siteDone(sites[i], &res.Sites[i])
			}
		}
		sc := &SiteContext{
			Site:   sites[i],
			Rank:   i + 1,
			NS:     nsSets[i],
			Conc:   concSignal,
			Result: &res.Sites[i],
			m:      m,
		}
		sc.Result.Site, sc.Result.Rank = sc.Site, sc.Rank
		if err := m.dispatch(ctx, sc); err != nil {
			return err
		}
		if ck != nil {
			return ck.siteDone(sc.Site, sc.Result)
		}
		return nil
	})
	sitePass.End()
	if err != nil {
		return nil, err
	}

	// Pair accounting over distinct (site, nameserver) pairs.
	res.EvidenceCounts = make(map[string]int)
	for i := range res.Sites {
		if res.Sites[i].DNS.Class == core.ClassUnknown {
			uncharacterizedSites.Inc()
		}
		for _, pair := range res.Sites[i].DNS.Pairs {
			res.PairStats.Total++
			switch pair.Class {
			case Private:
				res.PairStats.Private++
			case Third:
				res.PairStats.Third++
			default:
				res.PairStats.Uncharacterized++
			}
			if pair.Evidence != "" {
				res.EvidenceCounts[pair.Evidence]++
			}
		}
	}

	// Pass 3: inter-service dependencies over the discovered providers.
	interPass := telemetry.StartSpan("measure.interservice_pass")
	err = m.interService(ctx, res)
	interPass.End()
	if err != nil {
		return nil, err
	}

	// Pass 4 (chain runs only): vendor dependency resolution.
	if m.chainEnabled() {
		chainPass := telemetry.StartSpan("measure.chain_pass")
		err = m.chainService(ctx, res)
		chainPass.End()
		if err != nil {
			return nil, err
		}
	}
	if ck != nil {
		// Final snapshot: the complete run, usable later as the baseline for
		// an edited-universe incremental re-measurement.
		if err := ck.emitNow(); err != nil {
			return nil, err
		}
	}
	res.Diagnostics = m.diag.snapshot(m.stageOrder(), cfg.Resolver.Stats())
	res.Telemetry = telemetry.Default.Snapshot()
	return res, nil
}

type measurer struct {
	cfg    Config
	cdn    *compiledCDNMap
	stages []Stage
	diag   *diagCollector
	// stageHists are the per-stage site-latency histograms
	// (measure_<stage>_seconds), parallel to stages and resolved once per
	// run so the per-site hot path is a clock read and an atomic observe,
	// not a registry lookup or span allocation.
	stageHists  []*telemetry.HistogramMetric
	resolveHist *telemetry.HistogramMetric
}

func (m *measurer) initTelemetry() {
	m.stageHists = make([]*telemetry.HistogramMetric, len(m.stages))
	for i, st := range m.stages {
		m.stageHists[i] = telemetry.Histogram("measure_"+st.Name()+"_seconds",
			"per-site latency of the "+st.Name()+" classifier stage", nil)
	}
	m.resolveHist = telemetry.Histogram("measure_resolve_seconds",
		"per-site latency of the pass-1 NS resolution", nil)
}

// dispatch runs one site through every stage. Under conc.FailFast the first
// stage error aborts; under conc.Collect the failing stage's sub-result is
// left uncharacterized (the stage resets it before returning the error), the
// error is recorded, and the remaining stages still run — a dead domain must
// not cost the site its CA or CDN measurement, let alone the whole run.
func (m *measurer) dispatch(ctx context.Context, sc *SiteContext) error {
	for si, st := range m.stages {
		start := time.Now()
		err := st.ClassifySite(ctx, sc)
		m.stageHists[si].ObserveDuration(time.Since(start))
		m.diag.observe(st.Name(), err)
		if err == nil {
			continue
		}
		if m.cfg.ErrorPolicy == conc.Collect {
			m.diag.record(sc.Site, st.Name(), err)
			continue
		}
		return fmt.Errorf("site %s %s: %w", sc.Site, st.Name(), err)
	}
	return nil
}

// collectNS performs the NS pass (stage "resolve"). Under conc.Collect an
// unresolvable site keeps a nil NS set — the DNS stage then reports it
// uncharacterized — and the error is recorded instead of aborting the run.
func (m *measurer) collectNS(ctx context.Context, sites []string, ck *ckptRun) ([][]string, error) {
	out := make([][]string, len(sites))
	err := conc.ForEach(ctx, len(sites), m.cfg.Workers, conc.FailFast, func(ctx context.Context, i int) error {
		if ck != nil {
			if ns, ok := ck.priorNS(sites[i]); ok {
				out[i] = ns
				ckptNSReused.Inc()
				return nil
			}
		}
		start := time.Now()
		ns, err := m.cfg.Resolver.NS(ctx, sites[i])
		m.resolveHist.ObserveDuration(time.Since(start))
		m.diag.observe(stageResolve, err)
		if err != nil {
			if m.cfg.ErrorPolicy == conc.Collect {
				m.diag.record(sites[i], stageResolve, err)
				out[i] = nil
				return nil
			}
			return fmt.Errorf("NS(%s): %w", sites[i], err)
		}
		sort.Strings(ns)
		out[i] = ns
		return nil
	})
	return out, err
}

// concentration counts, per nameserver registrable domain, the number of
// sites with at least one nameserver there. One scratch set is reused across
// sites (the loop is sequential) instead of allocating a map per site.
func concentration(nsSets [][]string) map[string]int {
	out := make(map[string]int)
	seen := make(map[string]bool, 8)
	for _, set := range nsSets {
		clear(seen)
		for _, ns := range set {
			if rd := publicsuffix.RegistrableDomain(ns); rd != "" && !seen[rd] {
				seen[rd] = true
				out[rd]++
			}
		}
	}
	return out
}
