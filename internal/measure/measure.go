// Package measure implements the paper's §3 measurement methodology: the
// combined classification heuristics for third-party DNS providers, CAs and
// CDNs (TLD matching + SAN lists + SOA comparison + provider concentration),
// redundancy detection via entity grouping, OCSP-stapling observation, and
// the inter-service dependency measurements (CDN→DNS, CA→DNS, CA→CDN).
//
// The pipeline consumes only what a real measurement sees: DNS responses via
// a resolver, served certificates, landing pages, and a CNAME-suffix→CDN
// map. It never touches generator ground truth; validation against planted
// labels lives in the test suite, mirroring the paper's manually verified
// 100-site samples.
package measure

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"depscope/internal/certs"
	"depscope/internal/core"
	"depscope/internal/publicsuffix"
	"depscope/internal/resolver"
	"depscope/internal/webpage"
)

// CertSource provides the certificate served by a host, nil when the host
// does not speak HTTPS.
type CertSource interface {
	Get(host string) *certs.Certificate
}

// PageSource provides landing pages.
type PageSource interface {
	Page(site string) *webpage.Page
}

// CDNMap maps CNAME suffixes to CDN display names (§3.3's self-populated
// map).
type CDNMap map[string]string

// Match returns the CDN whose suffix covers name. Suffixes are normalized
// like the name, the longest suffix wins, and ties — equal-length suffixes,
// or distinct raw keys normalizing to the same suffix — break
// lexicographically by suffix then CDN name, so attribution never depends on
// map iteration order.
func (m CDNMap) Match(name string) (cdn, suffix string, ok bool) {
	name = publicsuffix.Normalize(name)
	best, bestCDN := "", ""
	for raw, c := range m {
		s := publicsuffix.Normalize(raw)
		if s == "" || (name != s && !strings.HasSuffix(name, "."+s)) {
			continue
		}
		switch {
		case len(s) > len(best),
			len(s) == len(best) && s < best,
			s == best && c < bestCDN:
			best, bestCDN = s, c
		}
	}
	return bestCDN, best, best != ""
}

// Config parameterizes a measurement run.
type Config struct {
	// Resolver answers DNS questions.
	Resolver *resolver.Resolver
	// Certs provides served certificates.
	Certs CertSource
	// Pages provides landing pages.
	Pages PageSource
	// CDNMap is the CNAME→CDN map.
	CDNMap CDNMap
	// ConcentrationThreshold is the §3.1 concentration cutoff; zero means 50.
	ConcentrationThreshold int
	// Workers bounds concurrency; any value < 1 means GOMAXPROCS.
	Workers int
	// SkipUnresolvable makes sites whose NS lookup fails outright come back
	// as uncharacterized instead of failing the run — live measurements over
	// real resolvers hit plenty of dead domains.
	SkipUnresolvable bool
	// DisableSAN / DisableSOA / DisableConcentration switch individual rules
	// of the combined DNS heuristic off, for the ablation experiments that
	// quantify each rule's contribution.
	DisableSAN, DisableSOA, DisableConcentration bool
}

// Classification is a per-pair verdict.
type Classification int

// Per-pair verdicts.
const (
	Unknown Classification = iota
	Private
	Third
)

// String names the classification.
func (c Classification) String() string {
	switch c {
	case Private:
		return "private"
	case Third:
		return "third-party"
	}
	return "unknown"
}

// NSPair is one (site, nameserver) classification with its evidence, kept
// for the validation experiments.
type NSPair struct {
	Host     string
	Class    Classification
	Evidence string // which rule fired: "tld", "san", "soa", "concentration"
	Entity   string // same-entity key used for redundancy grouping
}

// SiteDNS is the DNS measurement of one website.
type SiteDNS struct {
	Class core.DepClass
	// Providers are the measured third-party provider identities
	// (registrable domains of the nameserver entities).
	Providers []string
	Pairs     []NSPair
}

// SiteCA is the certificate measurement of one website.
type SiteCA struct {
	HTTPS   bool
	Class   core.DepClass // ClassNone when no HTTPS
	CAName  string        // measured CA identity (issuer org registrable domain)
	Third   bool
	Stapled bool
	// RevocationHosts are the OCSP/CDP hosts seen in the certificate.
	RevocationHosts []string
}

// SiteCDN is the CDN measurement of one website.
type SiteCDN struct {
	UsesCDN bool
	Class   core.DepClass // ClassNone when no CDN observed
	// Third lists third-party CDN names; PrivateCDNs lists private ones.
	Third       []string
	PrivateCDNs []string
	// InternalHosts are the page hosts attributed to the site itself.
	InternalHosts []string
}

// SiteResult bundles one site's measurements.
type SiteResult struct {
	Site string
	Rank int
	DNS  SiteDNS
	CA   SiteCA
	CDN  SiteCDN
}

// Results is a full measurement run.
type Results struct {
	Sites []SiteResult
	// NSConcentration maps nameserver registrable domain → number of sites
	// observed using it (the §3.1 concentration signal).
	NSConcentration map[string]int
	// PairStats accounts for the (website, nameserver) pairs, as the paper
	// reports them ("155,151 distinct pairs... 13.5% uncharacterized").
	PairStats PairStats
	// EvidenceCounts tallies which rule classified each pair ("tld", "san",
	// "soa", "concentration") — a diagnostic for the heuristic's anatomy.
	EvidenceCounts map[string]int
	// Inter-service measurements, keyed by provider identity.
	CDNToDNS map[string]ProviderDep
	CAToDNS  map[string]ProviderDep
	CAToCDN  map[string]ProviderDep
}

// PairStats summarizes (website, nameserver) pair classification.
type PairStats struct {
	Total           int
	Private         int
	Third           int
	Uncharacterized int
}

// UncharacterizedFrac is the fraction of pairs no heuristic classified.
func (p PairStats) UncharacterizedFrac() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Uncharacterized) / float64(p.Total)
}

// ProviderDep is a measured provider→provider arrangement.
type ProviderDep struct {
	Provider string
	Service  core.Service // the depended-upon service
	Class    core.DepClass
	// Deps are the measured upstream provider identities.
	Deps []string
}

// Run executes the full pipeline over the ranked site list.
func Run(ctx context.Context, sites []string, cfg Config) (*Results, error) {
	if cfg.Resolver == nil {
		return nil, fmt.Errorf("measure: Config.Resolver is required")
	}
	if cfg.ConcentrationThreshold == 0 {
		cfg.ConcentrationThreshold = 50
	}
	// Clamp, don't special-case zero: a negative value must not reach the
	// worker-spawn loop (where it would degrade to a single worker at best).
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	m := &measurer{cfg: cfg}

	// Pass 1: NS sets for every site (needed for the concentration signal).
	nsSets, err := m.collectNS(ctx, sites)
	if err != nil {
		return nil, err
	}
	conc := concentration(nsSets)

	res := &Results{
		NSConcentration: conc,
		CDNToDNS:        make(map[string]ProviderDep),
		CAToDNS:         make(map[string]ProviderDep),
		CAToCDN:         make(map[string]ProviderDep),
	}

	// Pass 2: per-site classification.
	res.Sites = make([]SiteResult, len(sites))
	err = m.forEach(ctx, len(sites), func(ctx context.Context, i int) error {
		site := sites[i]
		sr := SiteResult{Site: site, Rank: i + 1}
		var err error
		sr.DNS, err = m.classifySiteDNS(ctx, site, nsSets[i], conc)
		if err != nil {
			return fmt.Errorf("site %s dns: %w", site, err)
		}
		sr.CA, err = m.classifySiteCA(ctx, site)
		if err != nil {
			return fmt.Errorf("site %s ca: %w", site, err)
		}
		sr.CDN, err = m.classifySiteCDN(ctx, site)
		if err != nil {
			return fmt.Errorf("site %s cdn: %w", site, err)
		}
		res.Sites[i] = sr
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Pair accounting over distinct (site, nameserver) pairs.
	res.EvidenceCounts = make(map[string]int)
	for i := range res.Sites {
		for _, pair := range res.Sites[i].DNS.Pairs {
			res.PairStats.Total++
			switch pair.Class {
			case Private:
				res.PairStats.Private++
			case Third:
				res.PairStats.Third++
			default:
				res.PairStats.Uncharacterized++
			}
			if pair.Evidence != "" {
				res.EvidenceCounts[pair.Evidence]++
			}
		}
	}

	// Pass 3: inter-service dependencies over the discovered providers.
	if err := m.interService(ctx, res); err != nil {
		return nil, err
	}
	return res, nil
}

type measurer struct {
	cfg Config
}

// forEach runs fn(i) for i in [0,n) over the worker pool, failing fast.
func (m *measurer) forEach(ctx context.Context, n int, fn func(context.Context, int) error) error {
	workers := m.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n || len(errs) > 0 {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(ctx, i); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// collectNS performs the NS pass.
func (m *measurer) collectNS(ctx context.Context, sites []string) ([][]string, error) {
	out := make([][]string, len(sites))
	err := m.forEach(ctx, len(sites), func(ctx context.Context, i int) error {
		ns, err := m.cfg.Resolver.NS(ctx, sites[i])
		if err != nil {
			if m.cfg.SkipUnresolvable {
				out[i] = nil
				return nil
			}
			return fmt.Errorf("NS(%s): %w", sites[i], err)
		}
		sort.Strings(ns)
		out[i] = ns
		return nil
	})
	return out, err
}

// concentration counts, per nameserver registrable domain, the number of
// sites with at least one nameserver there.
func concentration(nsSets [][]string) map[string]int {
	out := make(map[string]int)
	for _, set := range nsSets {
		seen := make(map[string]bool, len(set))
		for _, ns := range set {
			if rd := publicsuffix.RegistrableDomain(ns); rd != "" && !seen[rd] {
				seen[rd] = true
				out[rd]++
			}
		}
	}
	return out
}
