package measure

import (
	"context"
	"fmt"
	"sort"
	"time"

	"depscope/internal/conc"
	"depscope/internal/core"
	"depscope/internal/publicsuffix"
	"depscope/internal/telemetry"
)

// Stream is the batched form of Run for worlds whose landing pages are
// materialized and released one batch at a time. The driving sequence is
//
//	st, _ := NewStream(sites, cfg)
//	for each batch: st.ResolveBatch(ctx, lo, hi)   // zones must exist
//	st.Seal()                                      // concentration signal
//	for each batch: st.MeasureBatch(ctx, lo, hi)   // pages must exist
//	res, _ := st.Finish(ctx)
//
// and yields Results identical to Run over the same fully-materialized
// world (the ecosystem invariants tests pin this, worker counts included).
// The split exists because of two global signals: the §3.1 concentration
// signal needs every site's NS set before any site can be classified
// (hence the Seal barrier between the resolve and measure sweeps), and the
// chain vendor population is only complete after the last batch (hence
// vendor hosts are gathered per batch, while the batch's pages are still
// live, and resolved in Finish).
//
// Checkpointing is not supported on the streaming path: a stream exists to
// avoid holding what a checkpoint would have to record.
type Stream struct {
	m      *measurer
	sites  []string
	nsSets [][]string
	res    *Results

	sealed   bool
	finished bool

	// hostCand[i] holds site i's deduplicated (registrable domain, host)
	// resource pairs, captured during the site's batch. Finish filters them
	// through the complete vendor population — replaying exactly the
	// sequential page walk chainService performs monolithically. Nil unless
	// chains are enabled.
	hostCand [][]rdHost
}

type rdHost struct{ rd, host string }

// NewStream validates cfg and prepares a stream over the full ranked site
// list (known up front; only the per-site artifacts stream).
func NewStream(sites []string, cfg Config) (*Stream, error) {
	if cfg.Resolver == nil {
		return nil, fmt.Errorf("measure: Config.Resolver is required")
	}
	if cfg.Checkpoint != nil || cfg.OnCheckpoint != nil {
		return nil, fmt.Errorf("measure: checkpointing is not supported on the streaming path")
	}
	if cfg.ConcentrationThreshold == 0 {
		cfg.ConcentrationThreshold = 50
	}
	m := &measurer{
		cfg:    cfg,
		stages: defaultStages(),
		diag:   newDiagCollector(),
	}
	if m.chainEnabled() {
		m.stages = append(m.stages, chainStage{})
	}
	m.initTelemetry()
	return &Stream{m: m, sites: sites, nsSets: make([][]string, len(sites))}, nil
}

// Len returns the number of sites in the stream.
func (s *Stream) Len() int { return len(s.sites) }

// SiteResult exposes site i's (possibly not yet measured) result row.
func (s *Stream) SiteResult(i int) *SiteResult { return &s.res.Sites[i] }

// ResolveBatch runs the pass-1 NS resolution for sites [lo, hi). The
// sites' zones must be materialized; pages are not needed.
func (s *Stream) ResolveBatch(ctx context.Context, lo, hi int) error {
	if s.sealed {
		panic("measure: Stream.ResolveBatch after Seal")
	}
	m := s.m
	defer telemetry.StartSpan("measure.resolve_pass").End()
	return conc.ForEach(ctx, hi-lo, m.cfg.Workers, conc.FailFast, func(ctx context.Context, j int) error {
		i := lo + j
		start := time.Now()
		ns, err := m.cfg.Resolver.NS(ctx, s.sites[i])
		m.resolveHist.ObserveDuration(time.Since(start))
		m.diag.observe(stageResolve, err)
		if err != nil {
			if m.cfg.ErrorPolicy == conc.Collect {
				m.diag.record(s.sites[i], stageResolve, err)
				s.nsSets[i] = nil
				return nil
			}
			return fmt.Errorf("NS(%s): %w", s.sites[i], err)
		}
		sort.Strings(ns)
		s.nsSets[i] = ns
		return nil
	})
}

// Seal closes pass 1: the concentration signal is computed over the full
// population and the CDN map is compiled — deferred to here because
// per-site CNAME→CDN entries (private CDNs) appear while site zones
// materialize, and Config.CDNMap may alias that live map.
func (s *Stream) Seal() {
	if s.sealed {
		panic("measure: Stream.Seal called twice")
	}
	s.sealed = true
	s.m.cdn = s.m.cfg.CDNMap.compile()
	s.res = &Results{
		NSConcentration: concentration(s.nsSets),
		CDNToDNS:        make(map[string]ProviderDep),
		CAToDNS:         make(map[string]ProviderDep),
		CAToCDN:         make(map[string]ProviderDep),
	}
	s.res.Sites = make([]SiteResult, len(s.sites))
	if s.m.chainEnabled() {
		s.hostCand = make([][]rdHost, len(s.sites))
	}
}

// MeasureBatch runs the pass-2 per-site classification for sites [lo, hi),
// whose pages must currently be materialized. Work within the batch fans
// out index-placed over the worker pool, so results are independent of the
// worker count. For chain runs it then captures the batch's vendor-host
// candidates sequentially, before the caller releases the pages.
func (s *Stream) MeasureBatch(ctx context.Context, lo, hi int) error {
	if !s.sealed {
		panic("measure: Stream.MeasureBatch before Seal")
	}
	m := s.m
	sitePass := telemetry.StartSpan("measure.site_pass")
	err := conc.ForEach(ctx, hi-lo, m.cfg.Workers, conc.FailFast, func(ctx context.Context, j int) error {
		i := lo + j
		sc := &SiteContext{
			Site:   s.sites[i],
			Rank:   i + 1,
			NS:     s.nsSets[i],
			Conc:   s.res.NSConcentration,
			Result: &s.res.Sites[i],
			m:      m,
		}
		sc.Result.Site, sc.Result.Rank = sc.Site, sc.Rank
		return m.dispatch(ctx, sc)
	})
	sitePass.End()
	if err != nil {
		return err
	}

	if s.hostCand != nil && m.cfg.Pages != nil {
		for i := lo; i < hi; i++ {
			if len(s.res.Sites[i].Chains) == 0 {
				continue
			}
			page := m.cfg.Pages.Page(s.sites[i])
			if page == nil {
				continue
			}
			var cand []rdHost
			for _, r := range page.Resources {
				if r.Host == "" {
					continue
				}
				rd := publicsuffix.RegistrableDomain(r.Host)
				if rd == "" {
					continue
				}
				dup := false
				for _, c := range cand {
					if c.host == r.Host {
						dup = true
						break
					}
				}
				if !dup {
					cand = append(cand, rdHost{rd: rd, host: r.Host})
				}
			}
			s.hostCand[i] = cand
		}
	}
	return nil
}

// Finish runs the cross-site accounting and the pass-3/pass-4
// inter-service measurements, and returns the completed Results. Pages may
// already be fully released: pass 3 needs only the per-site aggregates and
// the resident zones, and pass 4 replays the vendor-host candidates
// captured batch by batch.
func (s *Stream) Finish(ctx context.Context) (*Results, error) {
	if !s.sealed {
		panic("measure: Stream.Finish before Seal")
	}
	if s.finished {
		panic("measure: Stream.Finish called twice")
	}
	s.finished = true
	m := s.m
	res := s.res

	res.EvidenceCounts = make(map[string]int)
	for i := range res.Sites {
		if res.Sites[i].DNS.Class == core.ClassUnknown {
			uncharacterizedSites.Inc()
		}
		for _, pair := range res.Sites[i].DNS.Pairs {
			res.PairStats.Total++
			switch pair.Class {
			case Private:
				res.PairStats.Private++
			case Third:
				res.PairStats.Third++
			default:
				res.PairStats.Uncharacterized++
			}
			if pair.Evidence != "" {
				res.EvidenceCounts[pair.Evidence]++
			}
		}
	}

	interPass := telemetry.StartSpan("measure.interservice_pass")
	err := m.interService(ctx, res)
	interPass.End()
	if err != nil {
		return nil, err
	}

	if m.chainEnabled() {
		chainPass := telemetry.StartSpan("measure.chain_pass")
		err = s.chainFinish(ctx, res)
		chainPass.End()
		if err != nil {
			return nil, err
		}
	}

	res.Diagnostics = m.diag.snapshot(m.stageOrder(), m.cfg.Resolver.Stats())
	res.Telemetry = telemetry.Default.Snapshot()
	return res, nil
}

// chainFinish is the streaming pass 4: the vendor population is complete
// only now, so the per-batch host candidates are filtered through it —
// site order and first-seen dedup reproduce the monolithic walk exactly —
// and the vendors resolved as usual.
func (s *Stream) chainFinish(ctx context.Context, res *Results) error {
	vendors := s.m.chainAggregates(res)
	vendorHosts := make(map[string][]string, len(vendors))
	for i := range res.Sites {
		for _, c := range s.hostCand[i] {
			if !vendors[c.rd] {
				continue
			}
			if hosts := vendorHosts[c.rd]; !containsStr(hosts, c.host) {
				vendorHosts[c.rd] = append(vendorHosts[c.rd], c.host)
			}
		}
	}
	sortVendorHosts(vendorHosts)
	return s.m.chainResolve(ctx, res, vendors, vendorHosts)
}
