package measure

import (
	"sort"
	"sync"

	"depscope/internal/resolver"
	"depscope/internal/telemetry"
)

// Pipeline-wide telemetry. Per-stage counters are created lazily under the
// collector lock (stage names are dynamic) and cached per stage entry, so
// the steady state is one atomic add per observation.
var uncharacterizedSites = telemetry.Counter("measure_uncharacterized_sites_total",
	"sites whose DNS measurement ended uncharacterized (dead site or no classifiable pair)")

// maxRecordedErrors caps Diagnostics.Errors so a run over a mostly-dead list
// (100K sites, live resolver) cannot balloon the result; the per-stage
// counters always hold the full totals.
const maxRecordedErrors = 256

// Diagnostics reports what the pipeline runtime observed during a run:
// per-stage progress counters, the resolver's cache statistics, and — under
// conc.Collect — the recorded per-site errors.
type Diagnostics struct {
	// Stages holds one entry per pipeline stage, in pipeline order
	// (resolve, dns, ca, cdn, interservice).
	Stages []StageDiag
	// Resolver is the post-run snapshot of the resolver's counters; its
	// HitRate is the share of lookups the cache absorbed.
	Resolver resolver.Stats
	// Errors lists the recorded per-site failures (at most
	// maxRecordedErrors), sorted by site then stage. Empty under
	// conc.FailFast — a failing run aborts instead.
	Errors []SiteError
	// ErrorsTruncated is how many recorded errors were dropped by the cap.
	ErrorsTruncated int
}

// StageDiag is one stage's progress counters.
type StageDiag struct {
	Stage string
	// Sites is how many per-site (or, for interservice, per-provider)
	// classifications the stage ran, successful or not.
	Sites int
	// Errors is how many of them failed.
	Errors int
}

// TotalErrors sums the per-stage error counters.
func (d Diagnostics) TotalErrors() int {
	n := 0
	for _, s := range d.Stages {
		n += s.Errors
	}
	return n
}

// SiteError is one recorded per-site (or per-provider) failure.
type SiteError struct {
	Site  string // website, or provider identity for the interservice stage
	Stage string
	Err   string
}

// diagCollector accumulates stage counters and errors from concurrent
// workers, mirroring every observation into the shared telemetry registry
// (measure_<stage>_sites_total / measure_<stage>_errors_total).
type diagCollector struct {
	mu     sync.Mutex
	stages map[string]*stageEntry
	errs   []SiteError
	capped int
}

// stageEntry pairs the per-run counters with their process-wide telemetry
// twins, resolved once per stage name.
type stageEntry struct {
	diag         StageDiag
	sitesMetric  *telemetry.CounterMetric
	errorsMetric *telemetry.CounterMetric
}

func newDiagCollector() *diagCollector {
	return &diagCollector{stages: make(map[string]*stageEntry)}
}

// observe counts one classification attempt of stage, failed when err != nil.
func (d *diagCollector) observe(stage string, err error) {
	d.mu.Lock()
	se, ok := d.stages[stage]
	if !ok {
		se = &stageEntry{
			diag:         StageDiag{Stage: stage},
			sitesMetric:  telemetry.Counter("measure_"+stage+"_sites_total", "sites dispatched through the "+stage+" stage"),
			errorsMetric: telemetry.Counter("measure_"+stage+"_errors_total", "failed classifications in the "+stage+" stage"),
		}
		d.stages[stage] = se
	}
	se.diag.Sites++
	se.sitesMetric.Inc()
	if err != nil {
		se.diag.Errors++
		se.errorsMetric.Inc()
	}
	d.mu.Unlock()
}

// record keeps one per-site error, up to the cap.
func (d *diagCollector) record(site, stage string, err error) {
	d.mu.Lock()
	if len(d.errs) < maxRecordedErrors {
		d.errs = append(d.errs, SiteError{Site: site, Stage: stage, Err: err.Error()})
	} else {
		d.capped++
	}
	d.mu.Unlock()
}

// snapshot freezes the collector into a Diagnostics value. Stage entries
// follow order (stages that never ran are included with zero counters) and
// errors are sorted so concurrent collection never shows through.
func (d *diagCollector) snapshot(order []string, rs resolver.Stats) Diagnostics {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := Diagnostics{Resolver: rs, ErrorsTruncated: d.capped}
	for _, name := range order {
		if se, ok := d.stages[name]; ok {
			out.Stages = append(out.Stages, se.diag)
		} else {
			out.Stages = append(out.Stages, StageDiag{Stage: name})
		}
	}
	out.Errors = append(out.Errors, d.errs...)
	sort.Slice(out.Errors, func(i, j int) bool {
		a, b := out.Errors[i], out.Errors[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Stage < b.Stage
	})
	return out
}
