package measure

import (
	"context"
	"errors"
	"sort"
	"sync"

	"depscope/internal/certs"
	"depscope/internal/core"
	"depscope/internal/dnsmsg"
	"depscope/internal/publicsuffix"
	"depscope/internal/resolver"
)

// classifySiteDNS applies the paper's §3.1 combined heuristic to every
// (site, nameserver) pair and reduces the pairs to a dependency class via
// entity grouping.
func (m *measurer) classifySiteDNS(ctx context.Context, site string, nsHosts []string, conc map[string]int) (SiteDNS, error) {
	out := SiteDNS{}
	if len(nsHosts) == 0 {
		out.Class = core.ClassUnknown
		return out, nil
	}
	siteRD := publicsuffix.RegistrableDomain(site)
	cert := m.getCert(site)
	var sanRDs map[string]bool
	if cert != nil {
		sanRDs = cert.SANRegistrableDomains()
	}
	siteSOA, haveSiteSOA, err := m.cfg.Resolver.SOA(ctx, site)
	if err != nil {
		return out, err
	}

	out.Pairs = make([]NSPair, 0, len(nsHosts))
	for _, ns := range nsHosts {
		pair := NSPair{Host: ns, Class: Unknown}
		nsRD := publicsuffix.RegistrableDomain(ns)
		nsSOA, haveNSSOA, err := m.softSOA(ctx, ns)
		if err != nil {
			return out, err
		}
		pair.Entity = entityKey(ns, nsSOA, haveNSSOA)
		switch {
		case nsRD != "" && nsRD == siteRD:
			pair.Class, pair.Evidence = Private, "tld"
		case !m.cfg.DisableSAN && sanRDs != nil && sanRDs[nsRD]:
			pair.Class, pair.Evidence = Private, "san"
		case !m.cfg.DisableSOA && haveSiteSOA && haveNSSOA && !soaEqual(siteSOA, nsSOA):
			pair.Class, pair.Evidence = Third, "soa"
		case !m.cfg.DisableConcentration && conc[nsRD] >= m.cfg.ConcentrationThreshold:
			pair.Class, pair.Evidence = Third, "concentration"
		}
		out.Pairs = append(out.Pairs, pair)
	}
	out.Class, out.Providers = reduceDNSPairs(site, out.Pairs)
	return out, nil
}

// soaEqual compares two start-of-authority records by declared master
// nameserver: zones run by the same operator share an MNAME.
func soaEqual(a, b dnsmsg.SOAData) bool {
	return dnsmsg.CanonicalName(a.MName) == dnsmsg.CanonicalName(b.MName)
}

// entityKey produces the same-entity identity of a nameserver host. Per the
// paper's redundancy rule [31], nameservers sharing a registrable domain,
// an SOA MNAME or an SOA RNAME belong to one entity; keying on the SOA
// MNAME's registrable domain (falling back to the host's) folds aliases like
// alicdn.com/alibabadns.com into one entity.
func entityKey(ns string, soa dnsmsg.SOAData, haveSOA bool) string {
	if haveSOA {
		if rd := publicsuffix.RegistrableDomain(soa.MName); rd != "" {
			return rd
		}
	}
	if rd := publicsuffix.RegistrableDomain(ns); rd != "" {
		return rd
	}
	return publicsuffix.Normalize(ns)
}

// entitiesPool recycles the per-call entity-grouping scratch map of
// reduceDNSPairs across sites and workers.
var entitiesPool = sync.Pool{New: func() any {
	return make(map[string]Classification, 8)
}}

// reduceDNSPairs folds pair classifications into the site's dependency
// class. Any unknown pair leaves the site uncharacterized (the paper
// conservatively excludes such sites).
func reduceDNSPairs(site string, pairs []NSPair) (core.DepClass, []string) {
	entities := entitiesPool.Get().(map[string]Classification)
	defer func() {
		clear(entities)
		entitiesPool.Put(entities)
	}()
	for _, p := range pairs {
		if p.Class == Unknown {
			return core.ClassUnknown, nil
		}
		prev, seen := entities[p.Entity]
		if !seen {
			entities[p.Entity] = p.Class
			continue
		}
		// An entity with conflicting verdicts is resolved pessimistically to
		// third-party (overestimating exposure, per the paper's framing).
		if prev != p.Class {
			entities[p.Entity] = Third
		}
	}
	var thirds []string
	private := false
	for ent, cls := range entities {
		if cls == Third {
			thirds = append(thirds, ent)
		} else {
			private = true
		}
	}
	sort.Strings(thirds)
	switch {
	case len(thirds) == 0:
		return core.ClassPrivate, nil
	case len(thirds) == 1 && !private:
		return core.ClassSingleThird, thirds
	case len(thirds) >= 2:
		return core.ClassMultiThird, thirds
	default:
		return core.ClassPrivatePlusThird, thirds
	}
}

// softSOA looks up the SOA governing name, treating server failures and
// refusals (hosts outside any reachable authority) as absence of evidence
// rather than a fatal error — a live measurement sees plenty of those.
func (m *measurer) softSOA(ctx context.Context, name string) (dnsmsg.SOAData, bool, error) {
	soa, ok, err := m.cfg.Resolver.SOA(ctx, name)
	if errors.Is(err, resolver.ErrServFail) {
		return dnsmsg.SOAData{}, false, nil
	}
	return soa, ok, err
}

func (m *measurer) getCert(host string) *certs.Certificate {
	if m.cfg.Certs == nil {
		return nil
	}
	return m.cfg.Certs.Get(host)
}
