package measure

import "testing"

// TestCompiledCDNMapMatchAllocs guards the per-page-host hot path: matching
// a canonical (lowercase, trailing-dot) name against a compiled CDN map must
// cost at most one allocation, hit or miss. Normalize returns substrings for
// such names and the rule scan itself is allocation-free.
func TestCompiledCDNMapMatchAllocs(t *testing.T) {
	m := CDNMap{
		"fastcdn.test":     "FastCDN",
		"edgecast.example": "EdgeCast",
		"cdn.example.net":  "ExampleCDN",
	}
	c := m.compile()
	names := []string{
		"edge.fastcdn.test.",  // suffix hit
		"fastcdn.test.",       // exact hit
		"nomatch.other.test.", // miss
		"static.edgecast.example.",
	}
	// Warm any lazy state (publicsuffix memo entries for these names).
	for _, n := range names {
		c.Match(n)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, n := range names {
			c.Match(n)
		}
	})
	if allocs > 1 {
		t.Fatalf("compiled Match allocates %.1f per %d lookups, want <= 1", allocs, len(names))
	}
}
