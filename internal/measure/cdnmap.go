package measure

import (
	"sort"
	"strings"

	"depscope/internal/publicsuffix"
)

// CDNMap maps CNAME suffixes to CDN display names (§3.3's self-populated
// map).
type CDNMap map[string]string

// Match returns the CDN whose suffix covers name. Suffixes are normalized
// like the name, the longest suffix wins, and ties — equal-length suffixes,
// or distinct raw keys normalizing to the same suffix — break
// lexicographically by suffix then CDN name, so attribution never depends on
// map iteration order.
//
// Match compiles the map on every call; the pipeline compiles once at Run
// start and matches against the compiled form (Match sits on the per-page-
// host hot path).
func (m CDNMap) Match(name string) (cdn, suffix string, ok bool) {
	return m.compile().Match(name)
}

// compiledCDNMap is a CDNMap with every suffix pre-normalized and ordered
// for first-match-wins lookup, built once per Run.
type compiledCDNMap struct {
	rules []cdnRule
	// shortest maps CDN name → its shortest raw suffix (the zone apex the
	// inter-service pass probes); length ties break lexicographically so the
	// choice never depends on map iteration order.
	shortest map[string]string
}

type cdnRule struct {
	suffix string // normalized
	dotted string // "." + suffix, precomputed for HasSuffix
	name   string
}

// compile normalizes every suffix once. Distinct raw keys that normalize to
// the same suffix collapse to the lexicographically smallest CDN name, and
// rules are ordered longest-suffix-first (ties by suffix), so a linear scan
// returning the first hit reproduces Match's documented tie-breaks exactly:
// two distinct equal-length suffixes can never both cover one name.
func (m CDNMap) compile() *compiledCDNMap {
	bySuffix := make(map[string]string, len(m))
	shortest := make(map[string]string, len(m))
	for raw, name := range m {
		s := publicsuffix.Normalize(raw)
		if s == "" {
			continue
		}
		if cur, ok := bySuffix[s]; !ok || name < cur {
			bySuffix[s] = name
		}
		if cur, ok := shortest[name]; !ok ||
			len(raw) < len(cur) || (len(raw) == len(cur) && raw < cur) {
			shortest[name] = raw
		}
	}
	c := &compiledCDNMap{shortest: shortest, rules: make([]cdnRule, 0, len(bySuffix))}
	for s, name := range bySuffix {
		c.rules = append(c.rules, cdnRule{suffix: s, dotted: "." + s, name: name})
	}
	sort.Slice(c.rules, func(i, j int) bool {
		a, b := c.rules[i].suffix, c.rules[j].suffix
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a < b
	})
	return c
}

// Match is the hot-path lookup: first rule that covers name wins.
func (c *compiledCDNMap) Match(name string) (cdn, suffix string, ok bool) {
	name = publicsuffix.Normalize(name)
	for _, r := range c.rules {
		if name == r.suffix || strings.HasSuffix(name, r.dotted) {
			return r.name, r.suffix, true
		}
	}
	return "", "", false
}
