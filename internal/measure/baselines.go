package measure

import (
	"context"

	"depscope/internal/publicsuffix"
)

// Baseline classifiers reproduce the two strawmen the paper evaluates its
// combined heuristic against (§3.1–§3.3): TLD-only matching and SOA-only
// matching. They classify a (site, nameserver) pair in isolation, with no
// SAN or concentration evidence, and are used by the validation experiments
// that reproduce the paper's accuracy comparison (100%/97%/56% for DNS).

// BaselineTLD classifies a pair by registrable-domain equality only.
func BaselineTLD(site, host string) Classification {
	if publicsuffix.SameRegistrableDomain(site, host) {
		return Private
	}
	return Third
}

// BaselineSOA classifies a pair by SOA-record comparison only.
func (m *measurer) BaselineSOA(ctx context.Context, site, host string) (Classification, error) {
	siteSOA, okS, err := m.cfg.Resolver.SOA(ctx, site)
	if err != nil {
		return Unknown, err
	}
	hostSOA, okH, err := m.cfg.Resolver.SOA(ctx, host)
	if err != nil {
		return Unknown, err
	}
	if !okS || !okH {
		return Unknown, nil
	}
	if soaEqual(siteSOA, hostSOA) {
		return Private, nil
	}
	return Third, nil
}

// Baselines exposes the strawman classifiers bound to a configuration.
type Baselines struct {
	m *measurer
}

// NewBaselines builds baseline classifiers over cfg.
func NewBaselines(cfg Config) *Baselines {
	if cfg.ConcentrationThreshold == 0 {
		cfg.ConcentrationThreshold = 50
	}
	return &Baselines{m: &measurer{cfg: cfg}}
}

// TLD applies TLD-only classification.
func (b *Baselines) TLD(site, host string) Classification {
	return BaselineTLD(site, host)
}

// SOA applies SOA-only classification.
func (b *Baselines) SOA(ctx context.Context, site, host string) (Classification, error) {
	return b.m.BaselineSOA(ctx, site, host)
}

// CombinedPair applies the full combined heuristic to one pair, using a
// pre-computed concentration map (as the real pipeline does).
func (b *Baselines) CombinedPair(ctx context.Context, site, host string, conc map[string]int) (Classification, error) {
	res, err := b.m.classifySiteDNS(ctx, site, []string{host}, conc)
	if err != nil {
		return Unknown, err
	}
	if len(res.Pairs) == 0 {
		return Unknown, nil
	}
	return res.Pairs[0].Class, nil
}
