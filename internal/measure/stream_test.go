package measure

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"

	"depscope/internal/chain"
	"depscope/internal/ecosystem"
)

// streamView extends the pinned measurement view with the chain arrangement
// maps: the streaming path must reproduce the whole of Run's output,
// including pass 4, not just the pinned subset.
type streamView struct {
	pinnedView
	ResourceToDNS map[string]ProviderDep
	ResourceToCDN map[string]ProviderDep
}

func streamHash(t *testing.T, res *Results) string {
	t.Helper()
	view := streamView{
		pinnedView: pinnedView{
			Sites:           res.Sites,
			NSConcentration: res.NSConcentration,
			PairStats:       res.PairStats,
			EvidenceCounts:  res.EvidenceCounts,
			CDNToDNS:        res.CDNToDNS,
			CAToDNS:         res.CAToDNS,
			CAToCDN:         res.CAToCDN,
		},
		ResourceToDNS: res.ResourceToDNS,
		ResourceToCDN: res.ResourceToCDN,
	}
	b, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// driveStream runs the full chunked pipeline — zones per batch, seal, pages
// per batch with release — against a streaming universe materialization.
func driveStream(t *testing.T, u *ecosystem.Universe, snap ecosystem.Snapshot,
	chains *chain.Config, workers, batch int) *Results {
	t.Helper()
	c := ecosystem.NewChunked(u, snap)
	if chains != nil {
		c.EnableChains(*chains)
	}
	w := c.World()
	st, err := NewStream(c.SiteNames(), Config{
		Resolver: w.NewResolver(),
		Certs:    w.Certs,
		Pages:    w,
		CDNMap:   CDNMap(w.CNAMEToCDN),
		Workers:  workers,
		Chains:   chains,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n := c.Len()
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		c.AddSites(lo, hi)
		if err := st.ResolveBatch(ctx, lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	st.Seal()
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		c.MaterializePages(lo, hi)
		if err := st.MeasureBatch(ctx, lo, hi); err != nil {
			t.Fatal(err)
		}
		c.ReleasePages(lo, hi)
	}
	if len(w.Pages) != 0 {
		t.Fatalf("stream left %d pages resident", len(w.Pages))
	}
	res, err := st.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamMatchesRun is the streaming pinning property: batching the
// materialization and measurement — with pages released after each batch —
// produces the byte-identical measurement output of the monolithic
// Materialize + Run, with and without chains, across awkward batch sizes.
func TestStreamMatchesRun(t *testing.T) {
	cfg := chain.Default()
	for _, tc := range []struct {
		name   string
		chains *chain.Config
	}{{"plain", nil}, {"chains", &cfg}} {
		t.Run(tc.name, func(t *testing.T) {
			u, err := ecosystem.Generate(ecosystem.Options{Scale: 300, Seed: 2020})
			if err != nil {
				t.Fatal(err)
			}
			w := ecosystem.Materialize(u, ecosystem.Y2020)
			if tc.chains != nil {
				ecosystem.MaterializeChains(u, w, *tc.chains)
			}
			mono, err := Run(context.Background(), w.Sites, Config{
				Resolver: w.NewResolver(),
				Certs:    w.Certs,
				Pages:    w,
				CDNMap:   CDNMap(w.CNAMEToCDN),
				Workers:  4,
				Chains:   tc.chains,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := streamHash(t, mono)
			for _, batch := range []int{1000, 64, 37} {
				res := driveStream(t, u, ecosystem.Y2020, tc.chains, 4, batch)
				if got := streamHash(t, res); got != want {
					t.Errorf("batch %d: stream hash %s != monolithic %s", batch, got, want)
				}
			}
		})
	}
}

// TestStreamWorkerDeterminism pins worker-count independence on the
// streaming path, mirroring the Run determinism guarantee.
func TestStreamWorkerDeterminism(t *testing.T) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := chain.Default()
	var want string
	for i, workers := range []int{1, 4, 13} {
		res := driveStream(t, u, ecosystem.Y2020, &cfg, workers, 50)
		got := streamHash(t, res)
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("workers=%d: hash %s != workers=1 hash %s", workers, got, want)
		}
	}
}

// TestStreamRejectsCheckpointing: the streaming path refuses checkpoint
// configs instead of silently ignoring them.
func TestStreamRejectsCheckpointing(t *testing.T) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := ecosystem.NewChunked(u, ecosystem.Y2020)
	w := c.World()
	_, err = NewStream(c.SiteNames(), Config{
		Resolver:     w.NewResolver(),
		OnCheckpoint: func(*Checkpoint) error { return nil },
	})
	if err == nil || !strings.Contains(err.Error(), "streaming") {
		t.Fatalf("want streaming-checkpoint rejection, got %v", err)
	}
}
