package measure

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"depscope/internal/chain"
	"depscope/internal/ecosystem"
)

// chainWorld materializes a small 2020 world with resource chains grown in.
func chainWorld(t testing.TB, cfg chain.Config) (*ecosystem.Universe, *ecosystem.World) {
	t.Helper()
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 300, Seed: 2020})
	if err != nil {
		t.Fatal(err)
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	if cfg.Enabled() {
		ecosystem.MaterializeChains(u, w, cfg)
	}
	return u, w
}

func runChains(t testing.TB, w *ecosystem.World, cfg *chain.Config) *Results {
	t.Helper()
	res, err := Run(context.Background(), w.Sites, Config{
		Resolver: w.NewResolver(),
		Certs:    w.Certs,
		Pages:    w,
		CDNMap:   CDNMap(w.CNAMEToCDN),
		Chains:   cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChainClassification pins the chain stage's contract: per-site refs are
// sorted, depth-bounded, vendor-deduplicated, and every referenced vendor
// has a resolved DNS arrangement in ResourceToDNS.
func TestChainClassification(t *testing.T) {
	cfg := chain.Default()
	_, w := chainWorld(t, cfg)
	res := runChains(t, w, &cfg)

	sitesWith := 0
	vendors := make(map[string]bool)
	for _, sr := range res.Sites {
		if len(sr.Chains) == 0 {
			continue
		}
		sitesWith++
		if !sort.SliceIsSorted(sr.Chains, func(i, j int) bool {
			return sr.Chains[i].Provider < sr.Chains[j].Provider
		}) {
			t.Errorf("%s: chain refs not sorted: %v", sr.Site, sr.Chains)
		}
		seen := make(map[string]bool)
		for _, ref := range sr.Chains {
			if ref.Depth < 1 || ref.Depth > cfg.MaxDepth {
				t.Errorf("%s: depth %d outside [1,%d]", sr.Site, ref.Depth, cfg.MaxDepth)
			}
			if seen[ref.Provider] {
				t.Errorf("%s: vendor %s listed twice", sr.Site, ref.Provider)
			}
			seen[ref.Provider] = true
			vendors[ref.Provider] = true
			// The site never implicitly trusts itself.
			if strings.HasSuffix(ref.Provider, sr.Site) {
				t.Errorf("%s: self-referential chain edge %v", sr.Site, ref)
			}
		}
	}
	if sitesWith == 0 {
		t.Fatal("no site has chain edges")
	}
	for v := range vendors {
		if _, ok := res.ResourceToDNS[v]; !ok {
			t.Errorf("vendor %s has no resolved DNS arrangement", v)
		}
	}
	for v := range res.ResourceToDNS {
		if !vendors[v] {
			t.Errorf("ResourceToDNS has unreferenced vendor %s", v)
		}
	}
}

// TestChainsOffByteIdentity is the satellite-1 pinning property at the wire
// level: a nil chain config and a disabled (MaxDepth 1) one produce results
// that marshal byte-identically to each other, and the JSON carries no
// chain-specific keys at all — which is what keeps the measurement pinning
// hashes and the dyn-replay goldens untouched.
func TestChainsOffByteIdentity(t *testing.T) {
	_, w := chainWorld(t, chain.Config{MaxDepth: 1})

	nilRes := runChains(t, w, nil)
	offCfg := chain.Config{MaxDepth: 1}
	offRes := runChains(t, w, &offCfg)

	if h1, h2 := measurementHash(t, nilRes), measurementHash(t, offRes); h1 != h2 {
		t.Fatalf("nil and MaxDepth=1 chain configs hash differently: %s vs %s", h1, h2)
	}

	// The omitempty tags are load-bearing: chains-off site results must not
	// emit a Chains key (that is what keeps the golden measurement hashes
	// and the dyn-replay goldens byte-identical).
	sitesJSON, err := json.Marshal(nilRes.Sites)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sitesJSON, []byte(`"Chains"`)) {
		t.Error(`chains-off results leak "Chains" into the wire format`)
	}
	if nilRes.ResourceToDNS != nil || nilRes.ResourceToCDN != nil {
		t.Error("chains-off results allocate Resource arrangement maps")
	}
}

// BenchmarkChainMeasure benchmarks the chain-enabled pipeline (all four
// passes) with the chain stage doing real work: chains are materialized
// once, each iteration re-measures with a cold resolver cache. The custom
// edges/s metric counts classified chain edges per second of wall time.
// docs/bench.sh appends its numbers to BENCH_chain.json; the 100K arm is the
// paper-scale datapoint and only sensible with -benchtime=1x.
func BenchmarkChainMeasure(b *testing.B) {
	arms := []struct {
		label string
		scale int
	}{{"scale-2K", 2000}, {"scale-100K", 100000}}
	for _, arm := range arms {
		scale := arm.scale
		b.Run(arm.label, func(b *testing.B) {
			if scale > 10000 && testing.Short() {
				b.Skip("paper-scale arm")
			}
			u, err := ecosystem.Generate(ecosystem.Options{Scale: scale, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			w := ecosystem.Materialize(u, ecosystem.Y2020)
			cfg := chain.Default()
			ecosystem.MaterializeChains(u, w, cfg)
			b.ResetTimer()
			edges := 0
			for i := 0; i < b.N; i++ {
				res, err := Run(context.Background(), w.Sites, Config{
					Resolver: w.NewResolver(),
					Certs:    w.Certs,
					Pages:    w,
					CDNMap:   CDNMap(w.CNAMEToCDN),
					Chains:   &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				edges = 0
				for _, sr := range res.Sites {
					edges += len(sr.Chains)
				}
				if edges == 0 {
					b.Fatal("no chain edges classified")
				}
			}
			b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}
