package measure

import (
	"context"
	"strings"
	"testing"

	"depscope/internal/certs"
	"depscope/internal/core"
	"depscope/internal/dnsmsg"
	"depscope/internal/dnszone"
	"depscope/internal/resolver"
	"depscope/internal/webpage"
)

// Hand-built micro-worlds for the classifier edge cases, independent of the
// ecosystem generator.

type pageMap map[string]*webpage.Page

func (m pageMap) Page(site string) *webpage.Page { return m[site] }

func soaData(mname, rname string) dnsmsg.SOAData {
	return dnsmsg.SOAData{MName: mname, RName: rname, Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}
}

// microWorld wires the paper's canonical corner cases by hand:
//   - twitter.test: NS at Dyn, zone SOA pointing at Dyn (classifiable only
//     through the concentration rule);
//   - youtube.test: vanity NS under brand.test covered by the SAN list;
//   - amazon.test: two genuine providers (multi-third);
//   - alibaba.test: two NS domains sharing one SOA MNAME (one entity);
//   - plain.test: boring single third party via SOA mismatch.
func microWorld() (*dnszone.Store, *certs.Store, pageMap) {
	store := dnszone.NewStore()
	cs := certs.NewStore()
	pages := pageMap{}

	addProvider := func(domain string) {
		z := dnszone.NewZone(domain+".", soaData("ns1."+domain+".", "ops."+domain+"."))
		z.MustAdd(dnsmsg.Record{Name: "ns1." + domain + ".", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{203, 0, 113, 1}})
		z.MustAdd(dnsmsg.Record{Name: "ns2." + domain + ".", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{203, 0, 113, 2}})
		store.AddZone(z)
	}
	for _, d := range []string{"dynect.test", "ultra.test", "brand.test"} {
		addProvider(d)
	}
	// Alias provider: two zones, one shared SOA MNAME.
	for _, d := range []string{"alidns-a.test", "alidns-b.test"} {
		z := dnszone.NewZone(d+".", soaData("ns1.alidns-a.test.", "ops.alidns-a.test."))
		z.MustAdd(dnsmsg.Record{Name: "ns1." + d + ".", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{203, 0, 113, 3}})
		store.AddZone(z)
	}

	site := func(domain string, soa dnsmsg.SOAData, nsHosts ...string) *dnszone.Zone {
		z := dnszone.NewZone(domain+".", soa)
		for _, h := range nsHosts {
			z.MustAdd(dnsmsg.Record{Name: domain + ".", Type: dnsmsg.TypeNS, TTL: 60, Target: h})
		}
		z.MustAdd(dnsmsg.Record{Name: domain + ".", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{192, 0, 2, 1}})
		store.AddZone(z)
		pages[domain] = &webpage.Page{Site: domain}
		return z
	}

	// SOA-points-at-provider: only concentration can classify.
	site("twitter.test", soaData("ns1.dynect.test.", "hostmaster.twitter.test."),
		"ns1.dynect.test.", "ns2.dynect.test.")
	// Vanity private NS behind the SAN list.
	site("youtube.test", soaData("ns1.brand.test.", "hostmaster.youtube.test."),
		"ns1.brand.test.", "ns2.brand.test.")
	cs.Put("youtube.test", &certs.Certificate{
		Subject: "youtube.test", IssuerCA: "Google Trust Services",
		SANs: []string{"youtube.test", "*.youtube.test", "*.brand.test"},
	})
	// Genuine multi-provider redundancy.
	site("amazon.test", soaData("ns1.amazon.test.", "hostmaster.amazon.test."),
		"ns1.dynect.test.", "ns1.ultra.test.")
	// Same-entity alias across two NS domains.
	site("alibaba.test", soaData("ns1.alibaba.test.", "hostmaster.alibaba.test."),
		"ns1.alidns-a.test.", "ns1.alidns-b.test.")
	// Plain third party via SOA mismatch.
	site("plain.test", soaData("ns1.plain.test.", "hostmaster.plain.test."),
		"ns1.ultra.test.", "ns2.ultra.test.")
	return store, cs, pages
}

func microConfig(store *dnszone.Store, cs *certs.Store, pages pageMap, threshold int) Config {
	return Config{
		Resolver:               resolver.New(resolver.ZoneDirect{Store: store}),
		Certs:                  cs,
		Pages:                  pages,
		CDNMap:                 CDNMap{},
		ConcentrationThreshold: threshold,
	}
}

func TestMicroWorldClassification(t *testing.T) {
	store, cs, pages := microWorld()
	sites := []string{"twitter.test", "youtube.test", "amazon.test", "alibaba.test", "plain.test"}
	// Dyn's concentration here is 2 (twitter + amazon); threshold 2 lets the
	// concentration rule fire for the SOA-equal case.
	res, err := Run(context.Background(), sites, microConfig(store, cs, pages, 2))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SiteResult{}
	for _, sr := range res.Sites {
		byName[sr.Site] = sr
	}

	if got := byName["twitter.test"].DNS; got.Class != core.ClassSingleThird {
		t.Errorf("twitter = %v (%v), want single-third via concentration", got.Class, got.Pairs)
	} else if got.Pairs[0].Evidence != "concentration" {
		t.Errorf("twitter evidence = %q, want concentration", got.Pairs[0].Evidence)
	}
	if got := byName["youtube.test"].DNS; got.Class != core.ClassPrivate {
		t.Errorf("youtube = %v, want private via SAN", got.Class)
	} else if got.Pairs[0].Evidence != "san" {
		t.Errorf("youtube evidence = %q, want san", got.Pairs[0].Evidence)
	}
	if got := byName["amazon.test"].DNS; got.Class != core.ClassMultiThird || len(got.Providers) != 2 {
		t.Errorf("amazon = %v %v, want multi-third with 2 entities", got.Class, got.Providers)
	}
	if got := byName["alibaba.test"].DNS; got.Class != core.ClassSingleThird {
		t.Errorf("alibaba = %v %v, want single-third (one entity behind two domains)", got.Class, got.Providers)
	} else if got.Providers[0] != "alidns-a.test" {
		t.Errorf("alibaba entity = %v, want alidns-a.test", got.Providers)
	}
	if got := byName["plain.test"].DNS; got.Class != core.ClassSingleThird || got.Pairs[0].Evidence != "soa" {
		t.Errorf("plain = %v / %q, want single-third via soa", got.Class, got.Pairs[0].Evidence)
	}
}

func TestMicroWorldHighThresholdLeavesUnknown(t *testing.T) {
	store, cs, pages := microWorld()
	res, err := Run(context.Background(), []string{"twitter.test"}, microConfig(store, cs, pages, 50))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sites[0].DNS.Class; got != core.ClassUnknown {
		t.Errorf("twitter with threshold 50 = %v, want unknown", got)
	}
}

func TestReduceDNSPairsConflictResolvesThird(t *testing.T) {
	// Two pairs in the same entity with conflicting verdicts must resolve
	// pessimistically to third-party.
	cls, providers := reduceDNSPairs("x.test", []NSPair{
		{Host: "ns1.p.test.", Class: Private, Entity: "p.test"},
		{Host: "ns2.p.test.", Class: Third, Entity: "p.test"},
	})
	if cls != core.ClassSingleThird || len(providers) != 1 {
		t.Errorf("conflict reduce = %v %v", cls, providers)
	}
}

func TestReduceDNSPairsUnknownWins(t *testing.T) {
	cls, _ := reduceDNSPairs("x.test", []NSPair{
		{Host: "ns1.a.test.", Class: Third, Entity: "a.test"},
		{Host: "ns1.b.test.", Class: Unknown, Entity: "b.test"},
	})
	if cls != core.ClassUnknown {
		t.Errorf("unknown pair should uncharacterize the site, got %v", cls)
	}
}

func TestCAClassificationMicro(t *testing.T) {
	store, cs, pages := microWorld()
	// plain.test gets a third-party CA whose zone exists with its own SOA.
	caz := dnszone.NewZone("bigca.test.", soaData("ns1.bigca.test.", "ops.bigca.test."))
	caz.MustAdd(dnsmsg.Record{Name: "ocsp.bigca.test.", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{203, 0, 113, 9}})
	store.AddZone(caz)
	cs.Put("plain.test", &certs.Certificate{
		Subject: "plain.test", IssuerCA: "Big CA",
		SANs:        []string{"plain.test"},
		OCSPServers: []string{"http://ocsp.bigca.test/status"},
		Stapled:     false,
	})
	res, err := Run(context.Background(), []string{"plain.test"}, microConfig(store, cs, pages, 2))
	if err != nil {
		t.Fatal(err)
	}
	ca := res.Sites[0].CA
	if !ca.HTTPS || !ca.Third || ca.Class != core.ClassSingleThird || ca.CAName != "bigca.test" {
		t.Errorf("CA result = %+v", ca)
	}

	// With stapling the criticality disappears.
	cs.Put("plain.test", &certs.Certificate{
		Subject: "plain.test", IssuerCA: "Big CA",
		SANs:        []string{"plain.test"},
		OCSPServers: []string{"http://ocsp.bigca.test/status"},
		Stapled:     true,
	})
	res, err = Run(context.Background(), []string{"plain.test"}, microConfig(store, cs, pages, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sites[0].CA.Class; got != core.ClassPrivatePlusThird {
		t.Errorf("stapled CA class = %v, want private+third (non-critical)", got)
	}
}

func TestCANoRevocationEndpoints(t *testing.T) {
	store, cs, pages := microWorld()
	cs.Put("plain.test", &certs.Certificate{
		Subject: "plain.test", IssuerCA: "Self CA", SANs: []string{"plain.test"},
	})
	res, err := Run(context.Background(), []string{"plain.test"}, microConfig(store, cs, pages, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sites[0].CA; !got.HTTPS || got.Class != core.ClassPrivate {
		t.Errorf("no-endpoint CA = %+v, want private (nothing to depend on)", got)
	}
}

func TestCDNDetectionMicro(t *testing.T) {
	store, cs, pages := microWorld()
	// plain.test serves static content from a CDN-suffixed CNAME.
	cdnz := dnszone.NewZone("edge-cdn.test.", soaData("ns1.edge-cdn.test.", "ops.edge-cdn.test."))
	cdnz.MustAdd(dnsmsg.Record{Name: "*.edge-cdn.test.", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{203, 0, 113, 77}})
	store.AddZone(cdnz)
	pz := store.Zone("plain.test.")
	pz.MustAdd(dnsmsg.Record{Name: "static.plain.test.", Type: dnsmsg.TypeCNAME, TTL: 60, Target: "c1.edge-cdn.test."})
	pages["plain.test"] = &webpage.Page{Site: "plain.test"}
	pages["plain.test"].AddResource("https://static.plain.test/app.js")
	pages["plain.test"].AddResource("https://cdn.elsewhere-external.test/lib.js") // external, must be skipped

	cfg := microConfig(store, cs, pages, 2)
	cfg.CDNMap = CDNMap{"edge-cdn.test": "EdgeCDN"}
	res, err := Run(context.Background(), []string{"plain.test"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cdn := res.Sites[0].CDN
	if !cdn.UsesCDN || cdn.Class != core.ClassSingleThird || len(cdn.Third) != 1 || cdn.Third[0] != "EdgeCDN" {
		t.Errorf("CDN result = %+v", cdn)
	}
	if len(cdn.InternalHosts) != 1 || cdn.InternalHosts[0] != "static.plain.test" {
		t.Errorf("internal hosts = %v", cdn.InternalHosts)
	}
}

func TestConcentrationCounting(t *testing.T) {
	got := concentration([][]string{
		{"ns1.p.test.", "ns2.p.test."}, // one site, one domain: counts once
		{"ns1.p.test.", "ns1.q.test."},
		{"ns1.q.test."},
	})
	if got["p.test"] != 2 || got["q.test"] != 2 {
		t.Errorf("concentration = %v", got)
	}
}

func TestEntityKeyFallbacks(t *testing.T) {
	if k := entityKey("ns1.prov.test.", soaData("ns1.master.test.", "x."), true); k != "master.test" {
		t.Errorf("entity via SOA MName = %q", k)
	}
	if k := entityKey("ns1.prov.test.", dnsmsg.SOAData{}, false); k != "prov.test" {
		t.Errorf("entity via host = %q", k)
	}
}

func TestClassificationString(t *testing.T) {
	if Private.String() != "private" || Third.String() != "third-party" || Unknown.String() != "unknown" {
		t.Error("Classification.String mismatch")
	}
}

func TestRunResultsOrdered(t *testing.T) {
	store, cs, pages := microWorld()
	sites := []string{"plain.test", "twitter.test", "amazon.test"}
	res, err := Run(context.Background(), sites, microConfig(store, cs, pages, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range res.Sites {
		if sr.Site != sites[i] || sr.Rank != i+1 {
			t.Errorf("result %d = %s rank %d, want %s rank %d", i, sr.Site, sr.Rank, sites[i], i+1)
		}
	}
	if !strings.Contains(res.Sites[0].Site, "plain") {
		t.Error("order broken")
	}
}

func TestEvidenceCounts(t *testing.T) {
	store, cs, pages := microWorld()
	sites := []string{"twitter.test", "youtube.test", "amazon.test", "plain.test"}
	res, err := Run(context.Background(), sites, microConfig(store, cs, pages, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.EvidenceCounts["concentration"] == 0 {
		t.Errorf("concentration rule never fired: %v", res.EvidenceCounts)
	}
	if res.EvidenceCounts["san"] == 0 || res.EvidenceCounts["soa"] == 0 {
		t.Errorf("evidence counts incomplete: %v", res.EvidenceCounts)
	}
	total := 0
	for _, n := range res.EvidenceCounts {
		total += n
	}
	if total != res.PairStats.Private+res.PairStats.Third {
		t.Errorf("evidence total %d != classified pairs %d", total,
			res.PairStats.Private+res.PairStats.Third)
	}
}
