package measure

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"os"
	"path/filepath"
	"sync"

	"depscope/internal/resolver"
	"depscope/internal/telemetry"
)

// Checkpointed measurement runs. The pipeline's two expensive passes — NS
// resolution and per-site classification — persist their progress into a
// Checkpoint as they go: per-site NS sets, completed SiteResults, a content
// fingerprint of what was measured, and the resolver's warm cache. An
// interrupted run handed its last checkpoint resumes where it stopped, and
// a finished run handed an edited universe re-measures only the sites whose
// fingerprints changed (a provider-side edit changes every fingerprint and
// forces a full re-run — see ecosystem.World.SiteFingerprints).
//
// The checkpoint is the pipeline's only mutable cross-run state, so the
// codec is strict: a versioned JSON document, unknown fields rejected, a
// version or label mismatch refused outright. A corrupt or truncated file
// fails the load with a diagnostic — never a partial resume.

// CheckpointVersion is the file-format version this build reads and writes.
const CheckpointVersion = 1

// Checkpoint is a serialized snapshot of measurement progress.
type Checkpoint struct {
	// Version is the file-format version (CheckpointVersion).
	Version int `json:"version"`
	// Label identifies the run (depscope uses the snapshot year). Run
	// refuses to resume from a checkpoint whose label differs from the
	// configured one.
	Label string `json:"label,omitempty"`
	// Sites holds per-site progress, keyed by site domain.
	Sites map[string]*SiteCheckpoint `json:"sites"`
	// Resolver is the exported resolver cache, seeded back on resume so
	// re-measured sites start warm.
	Resolver []resolver.CachedLookup `json:"resolver,omitempty"`
}

// SiteCheckpoint is one site's checkpointed progress.
type SiteCheckpoint struct {
	// Fingerprint is the site's content fingerprint at measurement time;
	// resume reuses the entry only when it matches the current universe.
	Fingerprint string `json:"fingerprint,omitempty"`
	// NSDone reports the pass-1 NS set was recorded (NS may still be empty
	// for sites that did not resolve under a tolerant error policy).
	NSDone bool     `json:"ns_done,omitempty"`
	NS     []string `json:"ns,omitempty"`
	// Done reports pass-2 completed for this site; Result is its outcome.
	Done   bool        `json:"done,omitempty"`
	Result *SiteResult `json:"result,omitempty"`
}

// Checkpoint telemetry (see docs/observability.md).
var (
	ckptReused = telemetry.Counter("checkpoint_sites_reused_total",
		"checkpointed site results reused without re-measurement")
	ckptNSReused = telemetry.Counter("checkpoint_ns_reused_total",
		"pass-1 NS sets served from a checkpoint instead of the resolver")
	ckptSaves = telemetry.Counter("checkpoint_saves_total",
		"checkpoint snapshots emitted to the configured saver")
	ckptResolverImported = telemetry.Counter("checkpoint_resolver_entries_imported_total",
		"resolver cache entries seeded from a checkpoint on resume")
)

// Encode writes the checkpoint as JSON.
func (c *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("measure: encode checkpoint: %w", err)
	}
	return nil
}

// DecodeCheckpoint reads a checkpoint, rejecting unknown fields, version
// mismatches and trailing garbage. Every failure is a hard error: a resume
// either gets the complete recorded state or nothing.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Checkpoint
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("measure: decode checkpoint: %w", err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("measure: checkpoint version %d, this build reads version %d",
			c.Version, CheckpointVersion)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("measure: decode checkpoint: trailing data after checkpoint object")
	}
	return &c, nil
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("measure: load checkpoint: %w", err)
	}
	defer f.Close()
	c, err := DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return c, nil
}

// SaveCheckpoint writes a checkpoint file atomically (temp file + rename in
// the target directory), so an interrupt mid-save never corrupts the
// previous checkpoint.
func SaveCheckpoint(path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("measure: save checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if err := c.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("measure: save checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("measure: save checkpoint: %w", err)
	}
	return nil
}

// ckptRun is the in-run checkpoint recorder: it validates the prior
// checkpoint against the configured label and fingerprints, answers the
// passes' "is this already done?" queries, accumulates fresh progress, and
// emits snapshots through cfg.OnCheckpoint. All methods are safe for
// concurrent use by the site-pass workers.
type ckptRun struct {
	mu      sync.Mutex
	cp      *Checkpoint
	prior   map[string]*SiteCheckpoint
	fps     map[string]string
	emit    func(*Checkpoint) error
	every   int
	pending int
	res     *resolver.Resolver
}

// newCkptRun builds the recorder, or returns nil when the run is not
// checkpointed. It seeds the resolver cache from the prior checkpoint and
// keeps only prior entries whose fingerprint still matches the universe.
func newCkptRun(cfg *Config, nSites int) (*ckptRun, error) {
	if cfg.Checkpoint == nil && cfg.OnCheckpoint == nil {
		return nil, nil
	}
	ck := &ckptRun{
		cp: &Checkpoint{
			Version: CheckpointVersion,
			Label:   cfg.CheckpointLabel,
			Sites:   make(map[string]*SiteCheckpoint, nSites),
		},
		prior: make(map[string]*SiteCheckpoint),
		fps:   cfg.Fingerprints,
		emit:  cfg.OnCheckpoint,
		every: cfg.CheckpointEvery,
		res:   cfg.Resolver,
	}
	if ck.every <= 0 {
		ck.every = nSites / 10
		if ck.every < 200 {
			ck.every = 200
		}
	}
	if prev := cfg.Checkpoint; prev != nil {
		if prev.Label != cfg.CheckpointLabel {
			return nil, fmt.Errorf("measure: checkpoint label %q does not match run label %q",
				prev.Label, cfg.CheckpointLabel)
		}
		for site, sc := range prev.Sites {
			if sc != nil && sc.Fingerprint == ck.fps[site] {
				ck.prior[site] = sc
			}
		}
		ckptResolverImported.Add(int64(cfg.Resolver.ImportCache(prev.Resolver)))
	}
	return ck, nil
}

// priorNS returns a checkpointed pass-1 NS set still valid for site.
func (ck *ckptRun) priorNS(site string) ([]string, bool) {
	sc := ck.prior[site]
	if sc == nil || !sc.NSDone {
		return nil, false
	}
	return sc.NS, true
}

// priorResult returns a checkpointed pass-2 result still valid for site.
func (ck *ckptRun) priorResult(site string) *SiteResult {
	sc := ck.prior[site]
	if sc == nil || !sc.Done {
		return nil
	}
	return sc.Result
}

// recordNS records one site's pass-1 outcome.
func (ck *ckptRun) recordNS(site string, ns []string) {
	ck.mu.Lock()
	ck.cp.Sites[site] = &SiteCheckpoint{
		Fingerprint: ck.fps[site],
		NSDone:      true,
		NS:          ns,
	}
	ck.mu.Unlock()
}

// siteDone records one site's completed pass-2 result and emits a snapshot
// every `every` completions. The result is copied so the checkpoint never
// aliases the live Results slice.
func (ck *ckptRun) siteDone(site string, sr *SiteResult) error {
	r := *sr
	ck.mu.Lock()
	defer ck.mu.Unlock()
	sc := &SiteCheckpoint{Fingerprint: ck.fps[site], Done: true, Result: &r}
	if old := ck.cp.Sites[site]; old != nil {
		sc.NSDone, sc.NS = old.NSDone, old.NS
	}
	ck.cp.Sites[site] = sc
	ck.pending++
	if ck.pending < ck.every {
		return nil
	}
	ck.pending = 0
	return ck.emitLocked()
}

// emitNow emits a snapshot unconditionally (stage boundaries, end of run).
func (ck *ckptRun) emitNow() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.pending = 0
	return ck.emitLocked()
}

func (ck *ckptRun) emitLocked() error {
	if ck.emit == nil {
		return nil
	}
	snap := &Checkpoint{
		Version:  ck.cp.Version,
		Label:    ck.cp.Label,
		Sites:    maps.Clone(ck.cp.Sites),
		Resolver: ck.res.ExportCache(),
	}
	ckptSaves.Inc()
	if err := ck.emit(snap); err != nil {
		return fmt.Errorf("measure: checkpoint save: %w", err)
	}
	return nil
}
