package measure

import (
	"context"
	"math/rand"
	"testing"

	"depscope/internal/core"
	"depscope/internal/ecosystem"
)

const testScale = 2000

type fixture struct {
	u   *ecosystem.Universe
	w   *ecosystem.World
	res *Results
}

var fixtures = map[ecosystem.Snapshot]*fixture{}

// getFixture measures a materialized world once per snapshot and caches it
// for all tests.
func getFixture(t testing.TB, snap ecosystem.Snapshot) *fixture {
	t.Helper()
	if f, ok := fixtures[snap]; ok {
		return f
	}
	u, err := ecosystem.Generate(ecosystem.Options{Scale: testScale, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w := ecosystem.Materialize(u, snap)
	res, err := Run(context.Background(), w.Sites, Config{
		Resolver: w.NewResolver(),
		Certs:    w.Certs,
		Pages:    w,
		CDNMap:   CDNMap(w.CNAMEToCDN),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{u: u, w: w, res: res}
	fixtures[snap] = f
	return f
}

// expectedDNSClass maps ground truth to the class the pipeline should
// output (traps included).
func expectedDNSClass(ss ecosystem.SiteSnapshot) core.DepClass {
	if ss.DNSTrap == ecosystem.TrapUnknown {
		return core.ClassUnknown
	}
	switch ss.DNSMode {
	case ecosystem.DepPrivate:
		return core.ClassPrivate
	case ecosystem.DepSingleThird:
		return core.ClassSingleThird
	case ecosystem.DepMultiThird:
		return core.ClassMultiThird
	case ecosystem.DepPrivatePlusThird:
		return core.ClassPrivatePlusThird
	}
	return core.ClassNone
}

func siteTruth(f *fixture, snap ecosystem.Snapshot) map[string]ecosystem.SiteSnapshot {
	out := make(map[string]ecosystem.SiteSnapshot)
	for _, s := range f.u.List(snap) {
		if s.Snap[snap].Exists {
			out[s.Domain] = s.Snap[snap]
		}
	}
	return out
}

func TestPipelineRecoversDNSGroundTruth(t *testing.T) {
	f := getFixture(t, ecosystem.Y2020)
	truth := siteTruth(f, ecosystem.Y2020)
	mismatch := 0
	var firstMsg string
	for _, sr := range f.res.Sites {
		ss := truth[sr.Site]
		want := expectedDNSClass(ss)
		if sr.DNS.Class != want {
			mismatch++
			if firstMsg == "" {
				firstMsg = sr.Site + ": got " + sr.DNS.Class.String() + ", want " + want.String() +
					" (mode " + ss.DNSMode.String() + ", trap " + itoa(int(ss.DNSTrap)) + ", providers " + join(ss.DNSProviders) + ")"
			}
		}
	}
	// A handful of edge interactions are tolerable (e.g. vanity sites
	// without HTTPS become uncharacterized); systematic breakage is not.
	if frac := float64(mismatch) / float64(len(f.res.Sites)); frac > 0.01 {
		t.Fatalf("DNS class mismatches: %d/%d (%.2f%%), first: %s",
			mismatch, len(f.res.Sites), 100*frac, firstMsg)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

func TestPipelineRecoversDNSProviders(t *testing.T) {
	f := getFixture(t, ecosystem.Y2020)
	truth := siteTruth(f, ecosystem.Y2020)
	checked := 0
	for _, sr := range f.res.Sites {
		ss := truth[sr.Site]
		if ss.DNSTrap != ecosystem.TrapNone || !ss.DNSMode.UsesThird() {
			continue
		}
		// Expected measured identity: the registrable domain of the
		// provider's primary nameserver domain.
		want := make(map[string]bool)
		for _, pname := range ss.DNSProviders {
			p := f.u.Provider(pname)
			want[p.NSDomains[0]] = true
		}
		if len(sr.DNS.Providers) != len(want) {
			t.Fatalf("site %s: measured providers %v, want %v", sr.Site, sr.DNS.Providers, want)
		}
		for _, got := range sr.DNS.Providers {
			if !want[got] {
				t.Fatalf("site %s: measured provider %q not in truth %v", sr.Site, got, want)
			}
		}
		checked++
	}
	if checked < testScale/3 {
		t.Fatalf("only %d sites checked", checked)
	}
}

func TestPipelineRecoversCAGroundTruth(t *testing.T) {
	f := getFixture(t, ecosystem.Y2020)
	truth := siteTruth(f, ecosystem.Y2020)
	for _, sr := range f.res.Sites {
		ss := truth[sr.Site]
		if sr.CA.HTTPS != ss.HTTPS {
			t.Fatalf("site %s: HTTPS got %v want %v", sr.Site, sr.CA.HTTPS, ss.HTTPS)
		}
		if !ss.HTTPS {
			continue
		}
		if sr.CA.Stapled != ss.Stapled {
			t.Fatalf("site %s: stapled got %v want %v", sr.Site, sr.CA.Stapled, ss.Stapled)
		}
		wantThird := !ss.PrivateCA
		if sr.CA.Third != wantThird {
			t.Fatalf("site %s: CA third got %v want %v (CA %q, alias %v)",
				sr.Site, sr.CA.Third, wantThird, ss.CA, ss.PrivateCAAlias)
		}
		if wantThird {
			p := f.u.Provider(ss.CA)
			if sr.CA.CAName != p.Domain {
				t.Fatalf("site %s: CA identity got %q want %q", sr.Site, sr.CA.CAName, p.Domain)
			}
		}
	}
}

func TestPipelineRecoversCDNGroundTruth(t *testing.T) {
	f := getFixture(t, ecosystem.Y2020)
	truth := siteTruth(f, ecosystem.Y2020)
	for _, sr := range f.res.Sites {
		ss := truth[sr.Site]
		wantUses := ss.CDNMode != ecosystem.DepNone
		if sr.CDN.UsesCDN != wantUses {
			t.Fatalf("site %s: UsesCDN got %v want %v (mode %v trap %d)",
				sr.Site, sr.CDN.UsesCDN, wantUses, ss.CDNMode, ss.CDNTrap)
		}
		if !wantUses {
			continue
		}
		var wantClass core.DepClass
		switch ss.CDNMode {
		case ecosystem.DepPrivate:
			wantClass = core.ClassPrivate
		case ecosystem.DepSingleThird:
			wantClass = core.ClassSingleThird
		case ecosystem.DepMultiThird:
			wantClass = core.ClassMultiThird
		default:
			wantClass = core.ClassPrivatePlusThird
		}
		if sr.CDN.Class != wantClass {
			t.Fatalf("site %s: CDN class got %v want %v (providers %v, measured %v/%v, trap %d)",
				sr.Site, sr.CDN.Class, wantClass, ss.CDNProviders, sr.CDN.Third, sr.CDN.PrivateCDNs, ss.CDNTrap)
		}
		// Third CDN names must match ground truth exactly.
		want := make(map[string]bool)
		for _, c := range ss.CDNProviders {
			want[c] = true
		}
		for _, got := range sr.CDN.Third {
			if !want[got] {
				t.Fatalf("site %s: measured CDN %q not planted (%v)", sr.Site, got, ss.CDNProviders)
			}
		}
		if len(sr.CDN.Third) != len(want) {
			t.Fatalf("site %s: measured %v, want %v", sr.Site, sr.CDN.Third, ss.CDNProviders)
		}
	}
}

// TestValidationAccuracy reproduces the paper's §3.1 validation: on a random
// 100-site sample, the combined heuristic beats TLD-only and SOA-only
// matching (paper: 100% vs 97% vs 56%).
func TestValidationAccuracy(t *testing.T) {
	f := getFixture(t, ecosystem.Y2020)
	truth := siteTruth(f, ecosystem.Y2020)
	b := NewBaselines(Config{
		Resolver: f.w.NewResolver(),
		Certs:    f.w.Certs,
		Pages:    f.w,
		CDNMap:   CDNMap(f.w.CNAMEToCDN),
	})
	ctx := context.Background()

	// The paper validates on a 100-site random sample; with a 2K-site world
	// the rare corner cases (vanity NS ~0.4% of sites) would usually be
	// absent from such a sample, so we validate over the full characterized
	// population — a strict superset of the paper's experiment.
	rng := rand.New(rand.NewSource(11))
	var sample []SiteResult
	perm := rng.Perm(len(f.res.Sites))
	for _, idx := range perm {
		sr := f.res.Sites[idx]
		if truth[sr.Site].DNSTrap == ecosystem.TrapUnknown {
			continue // the paper samples characterized pairs
		}
		sample = append(sample, sr)
	}

	var pairs, tldOK, soaOK, combinedOK int
	for _, sr := range sample {
		ss := truth[sr.Site]
		wantThird := ss.DNSMode.UsesThird() && ss.DNSMode != ecosystem.DepPrivatePlusThird
		for _, pair := range sr.DNS.Pairs {
			// Ground truth per pair: private iff the host belongs to the
			// site (its own domain or alias).
			isPrivate := !wantThird
			if ss.DNSMode == ecosystem.DepPrivatePlusThird {
				isPrivate = BaselineTLD(sr.Site, pair.Host) == Private
			}
			want := Third
			if isPrivate {
				want = Private
			}
			pairs++
			if got := b.TLD(sr.Site, pair.Host); got == want {
				tldOK++
			}
			got, err := b.SOA(ctx, sr.Site, pair.Host)
			if err != nil {
				t.Fatal(err)
			}
			if got == want {
				soaOK++
			}
			if pair.Class == want {
				combinedOK++
			}
		}
	}
	acc := func(ok int) float64 { return float64(ok) / float64(pairs) }
	t.Logf("validation sample: %d pairs, combined %.1f%%, TLD %.1f%%, SOA %.1f%%",
		pairs, 100*acc(combinedOK), 100*acc(tldOK), 100*acc(soaOK))
	if acc(combinedOK) < 0.999 {
		t.Errorf("combined accuracy %.4f, want ~1.0", acc(combinedOK))
	}
	if acc(tldOK) < 0.95 || acc(tldOK) >= acc(combinedOK) {
		t.Errorf("TLD accuracy %.4f, want high but below combined %.4f", acc(tldOK), acc(combinedOK))
	}
	if acc(soaOK) > 0.80 {
		t.Errorf("SOA accuracy %.3f, expected to be poor (~0.56 in the paper)", acc(soaOK))
	}
}

func TestInterServiceDigiCertChain(t *testing.T) {
	f := getFixture(t, ecosystem.Y2020)
	dep, ok := f.res.CAToDNS["digicert.com"]
	if !ok {
		t.Fatal("DigiCert not measured for CA->DNS")
	}
	if dep.Class != core.ClassSingleThird {
		t.Fatalf("DigiCert DNS class = %v, want single-third", dep.Class)
	}
	if len(dep.Deps) != 1 || dep.Deps[0] != "dnsmadeeasy.com" {
		t.Fatalf("DigiCert DNS deps = %v, want dnsmadeeasy.com", dep.Deps)
	}
	cdn, ok := f.res.CAToCDN["digicert.com"]
	if !ok || cdn.Class != core.ClassSingleThird || len(cdn.Deps) != 1 || cdn.Deps[0] != "Incapsula" {
		t.Fatalf("DigiCert CDN dep = %+v, want critical on Incapsula", cdn)
	}
}

func TestInterServiceCDNToDNS(t *testing.T) {
	f := getFixture(t, ecosystem.Y2020)
	// The big CDNs run private DNS (Obs 11).
	for _, name := range []string{"Amazon CloudFront", "Akamai", "Incapsula"} {
		dep, ok := f.res.CDNToDNS[name]
		if !ok {
			t.Fatalf("%s not measured", name)
		}
		if dep.Class != core.ClassPrivate {
			t.Errorf("%s DNS class = %v, want private", name, dep.Class)
		}
	}
	// Fastly is redundantly provisioned across Dyn and private DNS in 2020.
	if dep, ok := f.res.CDNToDNS["Fastly"]; ok {
		if dep.Class != core.ClassPrivatePlusThird {
			t.Errorf("Fastly DNS class = %v, want private+third", dep.Class)
		}
		if len(dep.Deps) != 1 || dep.Deps[0] != "dynect.net" {
			t.Errorf("Fastly DNS deps = %v, want dynect.net", dep.Deps)
		}
	} else {
		t.Error("Fastly not measured")
	}
}

func TestInterServiceAmazonCAPrivateCDN(t *testing.T) {
	f := getFixture(t, ecosystem.Y2020)
	dep, ok := f.res.CAToCDN["amazontrust.com"]
	if !ok {
		t.Skip("no site sampled Amazon CA at this scale")
	}
	if dep.Class != core.ClassPrivate {
		t.Errorf("Amazon CA CDN class = %v (deps %v), want private", dep.Class, dep.Deps)
	}
}

func TestRunRequiresResolver(t *testing.T) {
	if _, err := Run(context.Background(), []string{"a.com"}, Config{}); err == nil {
		t.Error("Run accepted empty config")
	}
}

func TestCDNMapMatch(t *testing.T) {
	m := CDNMap{"cloudfront.net": "Amazon CloudFront", "cdn.cloudflare.net": "Cloudflare CDN", "net": "bogus"}
	if cdn, _, ok := m.Match("d123.cloudfront.net."); !ok || cdn != "Amazon CloudFront" {
		t.Errorf("match = %q %v", cdn, ok)
	}
	// Longest suffix wins.
	if cdn, _, _ := m.Match("x.cdn.cloudflare.net"); cdn != "Cloudflare CDN" {
		t.Errorf("longest match = %q", cdn)
	}
	if _, _, ok := m.Match("example.org"); ok {
		t.Error("matched unrelated host")
	}
	// Suffix must align on a label boundary.
	if cdn, _, _ := m.Match("evilcloudfront.net"); cdn == "Amazon CloudFront" {
		t.Error("matched across label boundary")
	}
}
