package measure

import (
	"context"
	"fmt"
	"sort"

	"depscope/internal/conc"
	"depscope/internal/core"
	"depscope/internal/publicsuffix"
	"depscope/internal/telemetry"
)

// This file implements the chain classifier: the measurement side of the
// fourth dependency type. The chain stage walks each landing page's
// resource-inclusion tree (webpage.Resource.Parent links) and reduces it to
// depth-annotated vendor references — which third-party registrable domains
// the site implicitly trusts, and how deep in the chain each one first
// appears. The chain pass then resolves every discovered vendor's own
// DNS/CDN arrangement through the same owner heuristics the inter-service
// pass applies to CDNs and CAs, so vendors enter the graph as first-class
// provider nodes whose outages can cascade.
//
// Everything here is gated on Config.Chains: with chains disabled the
// stage is never registered, SiteResult.Chains stays nil (and is omitted
// from JSON), and Results is byte-identical to the pre-chain pipeline.

var (
	chainEdgesBuilt = telemetry.Counter("chain_edges_total",
		"chain edges (site -> implicitly-trusted vendor) built by the chain stage")
	chainVendorsSeen = telemetry.Counter("chain_vendors_total",
		"distinct vendors resolved by the chain inter-service pass")
	chainMaxDepth = telemetry.Gauge("chain_max_depth",
		"deepest resource-inclusion level observed in the last chain-enabled run")
	chainMeanDepthMilli = telemetry.Gauge("chain_mean_depth_milli",
		"mean chain-edge inclusion depth of the last chain-enabled run, x1000")
)

// ChainRef is one measured chain edge: the site implicitly trusts Provider
// (a third-party registrable domain serving some resource in its inclusion
// tree) at minimum depth Depth (1 = loaded by the page itself).
type ChainRef struct {
	Provider string `json:"provider"`
	Depth    int    `json:"depth"`
}

// chainEnabled reports whether this run classifies chains.
func (m *measurer) chainEnabled() bool {
	return m.cfg.Chains != nil && m.cfg.Chains.Enabled()
}

// chainStage reduces a page's resource tree to depth-annotated vendor
// references. Registered only when Config.Chains enables chains.
type chainStage struct{}

func (chainStage) Name() string { return "chain" }

func (chainStage) ClassifySite(ctx context.Context, sc *SiteContext) error {
	refs, err := sc.m.classifySiteChains(ctx, sc.Site)
	if err != nil {
		sc.Result.Chains = nil
		return err
	}
	sc.Result.Chains = refs
	return nil
}

// classifySiteChains walks the page's inclusion tree. A resource host is a
// vendor when its registrable domain is neither the site's own nor covered
// by the site's certificate SANs (the same internal-host evidence the CDN
// stage uses — alias CDNs and brand domains are the site, not vendors).
// Each vendor is recorded once at its minimum inclusion depth, bounded by
// Config.Chains.MaxDepth.
func (m *measurer) classifySiteChains(_ context.Context, site string) ([]ChainRef, error) {
	if m.cfg.Pages == nil {
		return nil, nil
	}
	page := m.cfg.Pages.Page(site)
	if page == nil {
		return nil, nil
	}
	siteRD := publicsuffix.RegistrableDomain(site)
	cert := m.getCert(site)
	var sanRDs map[string]bool
	if cert != nil {
		sanRDs = cert.SANRegistrableDomains()
	}

	minDepth := make(map[string]int)
	for i, r := range page.Resources {
		if r.Host == "" {
			continue
		}
		hostRD := publicsuffix.RegistrableDomain(r.Host)
		if hostRD == "" || hostRD == siteRD {
			continue
		}
		if cert != nil && (sanRDs[hostRD] || cert.MatchesSAN(r.Host)) {
			continue
		}
		depth := page.Depth(i)
		if depth > m.cfg.Chains.MaxDepth {
			continue
		}
		if d, ok := minDepth[hostRD]; !ok || depth < d {
			minDepth[hostRD] = depth
		}
	}
	if len(minDepth) == 0 {
		return nil, nil
	}
	refs := make([]ChainRef, 0, len(minDepth))
	for vendor, d := range minDepth {
		refs = append(refs, ChainRef{Provider: vendor, Depth: d})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Provider < refs[j].Provider })
	return refs, nil
}

// chainService is the chain inter-service pass: it resolves each
// discovered vendor's own DNS arrangement (owner heuristics, like CDN/CA
// apexes) and detects CDNs fronting the vendor's observed resource hosts,
// filling Results.ResourceToDNS / ResourceToCDN. It also publishes the
// run-level chain telemetry aggregates.
func (m *measurer) chainService(ctx context.Context, res *Results) error {
	vendors := m.chainAggregates(res)

	// Observed hosts per vendor (for CNAME-chain CDN detection), gathered
	// sequentially from the pages so the host lists are deterministic.
	vendorHosts := make(map[string][]string, len(vendors))
	if m.cfg.Pages != nil {
		for i := range res.Sites {
			if len(res.Sites[i].Chains) == 0 {
				continue
			}
			page := m.cfg.Pages.Page(res.Sites[i].Site)
			if page == nil {
				continue
			}
			for _, r := range page.Resources {
				if r.Host == "" {
					continue
				}
				rd := publicsuffix.RegistrableDomain(r.Host)
				if !vendors[rd] {
					continue
				}
				if hosts := vendorHosts[rd]; !containsStr(hosts, r.Host) {
					vendorHosts[rd] = append(vendorHosts[rd], r.Host)
				}
			}
		}
	}
	sortVendorHosts(vendorHosts)

	return m.chainResolve(ctx, res, vendors, vendorHosts)
}

// chainAggregates derives the vendor population from the site pass and
// publishes the run-level chain telemetry. Shared between the monolithic
// pass above and the streaming Finish, which gathers vendor hosts per batch
// instead (pages are gone by the time the vendor population is complete).
func (m *measurer) chainAggregates(res *Results) map[string]bool {
	vendors := make(map[string]bool)
	edges, depthSum, maxDepth := 0, 0, 0
	for i := range res.Sites {
		for _, ref := range res.Sites[i].Chains {
			vendors[ref.Provider] = true
			edges++
			depthSum += ref.Depth
			if ref.Depth > maxDepth {
				maxDepth = ref.Depth
			}
		}
	}
	chainEdgesBuilt.Add(int64(edges))
	chainVendorsSeen.Add(int64(len(vendors)))
	chainMaxDepth.Set(int64(maxDepth))
	if edges > 0 {
		chainMeanDepthMilli.Set(int64(float64(depthSum) / float64(edges) * 1000))
	}
	return vendors
}

// sortVendorHosts orders each vendor's observed host list.
func sortVendorHosts(vendorHosts map[string][]string) {
	for _, hosts := range vendorHosts {
		sort.Strings(hosts)
	}
}

// chainResolve resolves every vendor's own DNS/CDN arrangement into
// Results.ResourceToDNS / ResourceToCDN, given the vendor population and
// each vendor's observed resource hosts.
func (m *measurer) chainResolve(ctx context.Context, res *Results, vendors map[string]bool, vendorHosts map[string][]string) error {
	res.ResourceToDNS = make(map[string]ProviderDep)
	res.ResourceToCDN = make(map[string]ProviderDep)
	vendorList := sortedKeys(vendors)
	dnsDeps := make([]*ProviderDep, len(vendorList))
	cdnDeps := make([]*ProviderDep, len(vendorList))
	err := conc.ForEach(ctx, len(vendorList), m.cfg.Workers, conc.FailFast, func(ctx context.Context, i int) error {
		vendor := vendorList[i]
		cls, deps, err := m.classifyOwnerDNS(ctx, vendor, res.NSConcentration)
		m.diag.observe(stageInterService, err)
		if err != nil {
			if m.cfg.ErrorPolicy == conc.Collect {
				m.diag.record(vendor, stageInterService, err)
			} else {
				return fmt.Errorf("chain %s dns: %w", vendor, err)
			}
		} else {
			dnsDeps[i] = &ProviderDep{Provider: vendor, Service: core.DNS, Class: cls, Deps: deps}
		}

		cdnCls, cdeps, err := m.classifyCACDN(ctx, vendor, vendorHosts[vendor])
		m.diag.observe(stageInterService, err)
		if err != nil {
			if m.cfg.ErrorPolicy == conc.Collect {
				m.diag.record(vendor, stageInterService, err)
				return nil
			}
			return fmt.Errorf("chain %s cdn: %w", vendor, err)
		}
		if cdnCls != core.ClassNone {
			cdnDeps[i] = &ProviderDep{Provider: vendor, Service: core.CDN, Class: cdnCls, Deps: cdeps}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i := range vendorList {
		if dnsDeps[i] != nil {
			res.ResourceToDNS[vendorList[i]] = *dnsDeps[i]
		}
		if cdnDeps[i] != nil {
			res.ResourceToCDN[vendorList[i]] = *cdnDeps[i]
		}
	}
	return nil
}
