package measure

import (
	"context"

	"depscope/internal/core"
	"depscope/internal/publicsuffix"
)

// classifySiteCA applies the §3.2 heuristic: the revocation endpoints
// (OCSP/CDP hosts) of the site's certificate are classified private or
// third-party by TLD match, SAN-list match, then SOA comparison. A site
// with a third-party CA and no OCSP staple is critically dependent; a
// stapled response removes the criticality (mapped to the redundant
// private+third class so the impact metrics skip it).
func (m *measurer) classifySiteCA(ctx context.Context, site string) (SiteCA, error) {
	out := SiteCA{}
	cert := m.getCert(site)
	if cert == nil {
		out.Class = core.ClassNone
		return out, nil
	}
	out.HTTPS = true
	out.Stapled = cert.Stapled
	out.RevocationHosts = cert.RevocationHosts()
	if len(out.RevocationHosts) == 0 {
		// No revocation endpoints at all: nothing to depend on.
		out.Class = core.ClassPrivate
		return out, nil
	}

	siteRD := publicsuffix.RegistrableDomain(site)
	sanRDs := cert.SANRegistrableDomains()
	siteSOA, haveSiteSOA, err := m.cfg.Resolver.SOA(ctx, site)
	if err != nil {
		return out, err
	}

	// Classify per endpoint host; the CA is third-party if any endpoint is.
	verdict := Unknown
	for _, host := range out.RevocationHosts {
		hostRD := publicsuffix.RegistrableDomain(host)
		var cls Classification
		switch {
		case hostRD != "" && hostRD == siteRD:
			cls = Private
		case sanRDs[hostRD]:
			cls = Private
		default:
			caSOA, haveCASOA, err := m.softSOA(ctx, host)
			if err != nil {
				return out, err
			}
			if haveSiteSOA && haveCASOA && !soaEqual(siteSOA, caSOA) {
				cls = Third
			}
		}
		if cls == Third {
			verdict = Third
			break
		}
		if cls == Private && verdict == Unknown {
			verdict = Private
		}
	}
	// The paper's CA heuristic has no further fallback: endpoints that never
	// mismatch are treated as the site's own authority.
	if verdict == Unknown {
		verdict = Private
	}

	out.CAName = publicsuffix.RegistrableDomain(out.RevocationHosts[0])
	out.Third = verdict == Third
	switch {
	case verdict == Private:
		out.Class = core.ClassPrivate
	case cert.Stapled:
		out.Class = core.ClassPrivatePlusThird
	default:
		out.Class = core.ClassSingleThird
	}
	return out, nil
}
