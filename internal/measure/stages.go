package measure

import (
	"context"

	"depscope/internal/core"
)

// Stage is one per-site classifier of the pipeline. Pass 2 of Run visits
// each site exactly once and dispatches it through every registered stage,
// so adding a service measurement means implementing Stage and appending it
// to defaultStages — Run itself never changes.
//
// A stage writes its verdict into sc.Result. On error it must first reset
// its sub-result to the uncharacterized value, so that under conc.Collect
// the site comes back well-formed (uncharacterized, not half-classified).
type Stage interface {
	// Name labels the stage in diagnostics and error messages.
	Name() string
	// ClassifySite measures one site and records the verdict in sc.Result.
	ClassifySite(ctx context.Context, sc *SiteContext) error
}

// SiteContext carries everything a stage may consult about one site: the
// pass-1 resolution artifacts shared by all stages plus the result slot to
// fill.
type SiteContext struct {
	// Site is the website under measurement; Rank its position in the list.
	Site string
	Rank int
	// NS is the site's sorted pass-1 nameserver set; nil when the site was
	// unresolvable (possible only under conc.Collect).
	NS []string
	// Conc is the population-wide nameserver concentration signal.
	Conc map[string]int
	// Result is the slot this site's verdicts accumulate in.
	Result *SiteResult

	m *measurer
}

// Config exposes the run configuration to stage implementations.
func (sc *SiteContext) Config() *Config { return &sc.m.cfg }

// Stage names. stageResolve and stageInterService bracket the per-site
// classifier stages in Diagnostics; the middle names come from the stages
// themselves.
const (
	stageResolve      = "resolve"
	stageInterService = "interservice"
)

// defaultStages returns the paper's three service classifiers, in the order
// they run per site. The DNS stage must precede none of the others — each
// stage reads only pass-1 artifacts — but the order is kept stable so error
// messages and diagnostics are deterministic.
func defaultStages() []Stage {
	return []Stage{dnsStage{}, caStage{}, cdnStage{}}
}

// stageOrder lists the diagnostic stage names in pipeline order.
func (m *measurer) stageOrder() []string {
	names := []string{stageResolve}
	for _, st := range m.stages {
		names = append(names, st.Name())
	}
	return append(names, stageInterService)
}

// dnsStage applies the §3.1 combined nameserver heuristic.
type dnsStage struct{}

func (dnsStage) Name() string { return "dns" }

func (dnsStage) ClassifySite(ctx context.Context, sc *SiteContext) error {
	dns, err := sc.m.classifySiteDNS(ctx, sc.Site, sc.NS, sc.Conc)
	if err != nil {
		sc.Result.DNS = SiteDNS{Class: core.ClassUnknown}
		return err
	}
	sc.Result.DNS = dns
	return nil
}

// caStage applies the §3.2 certificate/revocation heuristic.
type caStage struct{}

func (caStage) Name() string { return "ca" }

func (caStage) ClassifySite(ctx context.Context, sc *SiteContext) error {
	ca, err := sc.m.classifySiteCA(ctx, sc.Site)
	if err != nil {
		sc.Result.CA = SiteCA{Class: core.ClassUnknown}
		return err
	}
	sc.Result.CA = ca
	return nil
}

// cdnStage applies the §3.3 landing-page/CNAME heuristic.
type cdnStage struct{}

func (cdnStage) Name() string { return "cdn" }

func (cdnStage) ClassifySite(ctx context.Context, sc *SiteContext) error {
	cdn, err := sc.m.classifySiteCDN(ctx, sc.Site)
	if err != nil {
		sc.Result.CDN = SiteCDN{Class: core.ClassUnknown}
		return err
	}
	sc.Result.CDN = cdn
	return nil
}
