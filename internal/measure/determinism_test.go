package measure

import (
	"context"
	"testing"

	"depscope/internal/ecosystem"
)

// TestCDNMapMatchDeterministic pins the tie-break order of CDNMap.Match.
// Two raw map keys that normalize to the same suffix ("Fast.net." and
// "fast.net") used to race on Go's randomized map iteration order, so the
// reported CDN flipped between runs. The match must now be stable: for equal
// suffixes the lexicographically smallest CDN name wins.
func TestCDNMapMatchDeterministic(t *testing.T) {
	m := CDNMap{
		"Fast.net.": "Zeta CDN",
		"fast.net":  "Alpha CDN",
	}
	for i := 0; i < 200; i++ {
		cdn, suffix, ok := m.Match("edge.fast.net")
		if !ok || cdn != "Alpha CDN" || suffix != "fast.net" {
			t.Fatalf("iteration %d: Match = %q %q %v, want Alpha CDN fast.net true", i, cdn, suffix, ok)
		}
	}
	// The longest-suffix rule still dominates the name tie-break.
	m["cdn.fast.net"] = "Zulu CDN"
	for i := 0; i < 200; i++ {
		if cdn, _, _ := m.Match("a.cdn.fast.net"); cdn != "Zulu CDN" {
			t.Fatalf("iteration %d: longest suffix lost to %q", i, cdn)
		}
	}
}

// TestRunNegativeWorkers: worker counts below 1 mean GOMAXPROCS. A negative
// value used to slip past the == 0 check and run the pool at a single
// goroutine; the pipeline must clamp it and still measure every site.
func TestRunNegativeWorkers(t *testing.T) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	res, err := Run(context.Background(), w.Sites, Config{
		Resolver: w.NewResolver(),
		Certs:    w.Certs,
		Pages:    w,
		CDNMap:   CDNMap(w.CNAMEToCDN),
		Workers:  -4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != len(w.Sites) {
		t.Errorf("measured %d sites, want %d", len(res.Sites), len(w.Sites))
	}
}

// TestRunResolverHitRateStable: the resolver's Stats snapshot must agree
// between the live handle and the Diagnostics copy, and the cache must
// absorb most of the pipeline's lookups — SOA and concentration probes
// revisit the same provider zones constantly, so a low hit-rate means the
// cache (or the counters) broke. The exact hit count may vary with worker
// interleaving (concurrent misses on one key both go to the transport), so
// the assertion is a band, not an equality.
func TestRunResolverHitRateStable(t *testing.T) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	r := w.NewResolver()
	res, err := Run(context.Background(), w.Sites, Config{
		Resolver: r,
		Certs:    w.Certs,
		Pages:    w,
		CDNMap:   CDNMap(w.CNAMEToCDN),
		Workers:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	live := r.Stats()
	diag := res.Diagnostics.Resolver
	if live != diag {
		t.Errorf("live stats %+v != diagnostics snapshot %+v", live, diag)
	}
	if diag.Queries == 0 || diag.Hits >= diag.Queries {
		t.Fatalf("implausible stats %+v", diag)
	}
	if rate := diag.HitRate(); rate < 0.5 || rate >= 1 {
		t.Errorf("cache hit rate = %.3f, want within [0.5, 1)", rate)
	}
}
