package measure

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"depscope/internal/ecosystem"
)

// pinnedView is the measurement output subject to the pinning guarantee: the
// refactor of Run into the staged pipeline (conc pool, Stage dispatch,
// compiled CDN map, parallel inter-service pass) must not change a single
// byte of it for healthy runs under conc.FailFast. Diagnostics are
// deliberately excluded — they are new observability, not measurement
// output.
type pinnedView struct {
	Sites           []SiteResult
	NSConcentration map[string]int
	PairStats       PairStats
	EvidenceCounts  map[string]int
	CDNToDNS        map[string]ProviderDep
	CAToDNS         map[string]ProviderDep
	CAToCDN         map[string]ProviderDep
}

func measurementHash(t *testing.T, res *Results) string {
	t.Helper()
	view := pinnedView{
		Sites:           res.Sites,
		NSConcentration: res.NSConcentration,
		PairStats:       res.PairStats,
		EvidenceCounts:  res.EvidenceCounts,
		CDNToDNS:        res.CDNToDNS,
		CAToDNS:         res.CAToDNS,
		CAToCDN:         res.CAToCDN,
	}
	// encoding/json sorts map keys, and every slice in the view is
	// deterministically ordered by the pipeline, so the encoding is canonical.
	b, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// goldenHashes were captured from the pre-refactor monolithic pipeline
// (commit d94cf9a: measure.forEach + three per-site passes) at scale 2000,
// workers 8. They pin Run's FailFast output bit-for-bit across the staged
// runtime refactor, for both seeds and both snapshots.
var goldenHashes = map[int64]map[ecosystem.Snapshot]string{
	1: {
		ecosystem.Y2016: "4480bc76fd462ea4cc29d450482e89f7982ef9d60f33aeae66d2067858242d7d",
		ecosystem.Y2020: "911a51ba69f62febca5bb7bd2bdae075d72768fc43de04eb767b472e79630d5b",
	},
	2020: {
		ecosystem.Y2016: "2caf382b8abcba8042fb12d12df6ff02340662f2456c2d700f4266dbb3956007",
		ecosystem.Y2020: "794bde30a967e1329fe19ba8554252b71d59c7e20321ae486bbeec142ebb3323",
	},
}

// TestRunPinnedAgainstPreRefactor proves the staged pipeline is a structural
// refactor, not a behavior change: under FailFast its full measurement
// output is byte-identical to the pre-refactor code path for seeds {1, 2020}
// at scale 2K, for both snapshots.
func TestRunPinnedAgainstPreRefactor(t *testing.T) {
	for seed, wantBySnap := range goldenHashes {
		u, err := ecosystem.Generate(ecosystem.Options{Scale: 2000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for snap, want := range wantBySnap {
			w := ecosystem.Materialize(u, snap)
			res, err := Run(context.Background(), w.Sites, Config{
				Resolver: w.NewResolver(),
				Certs:    w.Certs,
				Pages:    w,
				CDNMap:   CDNMap(w.CNAMEToCDN),
				Workers:  8,
			})
			if err != nil {
				t.Fatalf("seed %d snap %s: %v", seed, snap, err)
			}
			if got := measurementHash(t, res); got != want {
				t.Errorf("seed %d snap %s: measurement hash %s, want pre-refactor %s",
					seed, snap, got, want)
			}
		}
	}
}
