package measure

import (
	"context"
	"reflect"
	"testing"

	"depscope/internal/dnsserver"
	"depscope/internal/ecosystem"
	"depscope/internal/resolver"
)

// TestFullPipelineOverWire runs the complete measurement (DNS, CA, CDN and
// inter-service passes) against a generated world served over real UDP/TCP
// DNS, and requires bit-identical results to the in-process path — the
// strongest form of the DESIGN.md cross-check.
func TestFullPipelineOverWire(t *testing.T) {
	if testing.Short() {
		t.Skip("socket-heavy")
	}
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 250, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	srv := dnsserver.New(w.Zones, dnsserver.Config{})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	base := Config{
		Certs:                  w.Certs,
		Pages:                  w,
		CDNMap:                 CDNMap(w.CNAMEToCDN),
		ConcentrationThreshold: 5,
		Workers:                8,
	}

	direct := base
	direct.Resolver = w.NewResolver()
	wantRes, err := Run(ctx, w.Sites, direct)
	if err != nil {
		t.Fatal(err)
	}

	wire := base
	wire.Resolver = resolver.New(resolver.NewUDPTransport(addr))
	gotRes, err := Run(ctx, w.Sites, wire)
	if err != nil {
		t.Fatal(err)
	}

	if srv.Queries() == 0 {
		t.Fatal("wire run issued no queries")
	}
	if !reflect.DeepEqual(gotRes.Sites, wantRes.Sites) {
		for i := range gotRes.Sites {
			if !reflect.DeepEqual(gotRes.Sites[i], wantRes.Sites[i]) {
				t.Fatalf("site %s differs over the wire:\nwire:   %+v\ndirect: %+v",
					gotRes.Sites[i].Site, gotRes.Sites[i], wantRes.Sites[i])
			}
		}
	}
	if !reflect.DeepEqual(gotRes.CAToDNS, wantRes.CAToDNS) {
		t.Error("CA->DNS differs over the wire")
	}
	if !reflect.DeepEqual(gotRes.CDNToDNS, wantRes.CDNToDNS) {
		t.Error("CDN->DNS differs over the wire")
	}
	if !reflect.DeepEqual(gotRes.CAToCDN, wantRes.CAToCDN) {
		t.Error("CA->CDN differs over the wire")
	}
	if gotRes.PairStats != wantRes.PairStats {
		t.Errorf("pair stats differ: %+v vs %+v", gotRes.PairStats, wantRes.PairStats)
	}
}
