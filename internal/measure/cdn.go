package measure

import (
	"context"
	"errors"
	"sort"
	"sync"

	"depscope/internal/core"
	"depscope/internal/publicsuffix"
	"depscope/internal/resolver"
)

// foundPool recycles the per-site CDN-evidence scratch map (CDN name → the
// CNAME that matched it) across dispatch calls.
var foundPool = sync.Pool{New: func() any {
	return make(map[string]string, 4)
}}

// classifySiteCDN applies §3.3: the landing page is reduced to resource
// hosts; hosts belonging to the site (TLD, SAN or SOA evidence) are its
// internal resources; their CNAME chains are matched against the CNAME→CDN
// map; each (site, CDN) pair is then classified private or third-party.
func (m *measurer) classifySiteCDN(ctx context.Context, site string) (SiteCDN, error) {
	out := SiteCDN{}
	if m.cfg.Pages == nil {
		out.Class = core.ClassNone
		return out, nil
	}
	page := m.cfg.Pages.Page(site)
	if page == nil {
		out.Class = core.ClassNone
		return out, nil
	}

	siteRD := publicsuffix.RegistrableDomain(site)
	cert := m.getCert(site)
	var sanRDs map[string]bool
	if cert != nil {
		sanRDs = cert.SANRegistrableDomains()
	}
	siteSOA, haveSiteSOA, err := m.cfg.Resolver.SOA(ctx, site)
	if err != nil {
		return out, err
	}

	// Identify internal resources.
	for _, host := range page.Hosts() {
		hostRD := publicsuffix.RegistrableDomain(host)
		internal := hostRD != "" && hostRD == siteRD
		if !internal && cert != nil && (sanRDs[hostRD] || cert.MatchesSAN(host)) {
			internal = true
		}
		if !internal && haveSiteSOA {
			// SOA evidence: the host's authority shares the site's master.
			hostSOA, haveHostSOA, err := m.softSOA(ctx, host)
			if err != nil {
				return out, err
			}
			if haveHostSOA && soaEqual(siteSOA, hostSOA) {
				internal = true
			}
		}
		if internal {
			out.InternalHosts = append(out.InternalHosts, host)
		}
	}

	// Detect CDNs on internal-resource CNAME chains.
	found := foundPool.Get().(map[string]string)
	defer func() {
		clear(found)
		foundPool.Put(found)
	}()
	for _, host := range out.InternalHosts {
		chain, err := m.cfg.Resolver.CNAMEChain(ctx, host)
		if err != nil && !errors.Is(err, resolver.ErrServFail) {
			return out, err
		}
		for _, name := range chain {
			if cdn, _, ok := m.cdn.Match(name); ok {
				if _, seen := found[cdn]; !seen {
					found[cdn] = publicsuffix.Normalize(name)
				}
			}
		}
	}
	if len(found) == 0 {
		out.Class = core.ClassNone
		return out, nil
	}
	out.UsesCDN = true

	// Classify each (site, CDN) pair by its matched CNAME.
	for cdn, cname := range found {
		cnameRD := publicsuffix.RegistrableDomain(cname)
		var cls Classification
		switch {
		case cnameRD != "" && cnameRD == siteRD:
			cls = Private
		case sanRDs[cnameRD]:
			cls = Private
		default:
			cnSOA, haveCNSOA, err := m.softSOA(ctx, cname)
			if err != nil {
				return out, err
			}
			if haveSiteSOA && haveCNSOA && !soaEqual(siteSOA, cnSOA) {
				cls = Third
			}
		}
		if cls == Third {
			out.Third = append(out.Third, cdn)
		} else {
			// Unknown pairs default to private, consistent with the paper's
			// conservative treatment of unclassifiable CDN pairs.
			out.PrivateCDNs = append(out.PrivateCDNs, cdn)
		}
	}
	sort.Strings(out.Third)
	sort.Strings(out.PrivateCDNs)

	switch {
	case len(out.Third) == 0:
		out.Class = core.ClassPrivate
	case len(out.Third) == 1 && len(out.PrivateCDNs) == 0:
		out.Class = core.ClassSingleThird
	case len(out.Third) == 1:
		out.Class = core.ClassPrivatePlusThird
	default:
		out.Class = core.ClassMultiThird
	}
	return out, nil
}
