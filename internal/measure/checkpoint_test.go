package measure

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"depscope/internal/core"
	"depscope/internal/ecosystem"
)

func checkpointWorld(t *testing.T, scale int, seed int64, snap ecosystem.Snapshot) *ecosystem.World {
	t.Helper()
	u, err := ecosystem.Generate(ecosystem.Options{Scale: scale, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ecosystem.Materialize(u, snap)
}

func checkpointConfig(w *ecosystem.World) Config {
	return Config{
		Resolver: w.NewResolver(),
		Certs:    w.Certs,
		Pages:    w,
		CDNMap:   CDNMap(w.CNAMEToCDN),
		Workers:  4,
	}
}

func TestCheckpointCodecRoundtrip(t *testing.T) {
	cp := &Checkpoint{
		Version: CheckpointVersion,
		Label:   "2020",
		Sites: map[string]*SiteCheckpoint{
			"a.example": {
				Fingerprint: "fp-a",
				NSDone:      true,
				NS:          []string{"ns1.dyn.example.", "ns2.dyn.example."},
				Done:        true,
				Result: &SiteResult{
					Site: "a.example",
					Rank: 1,
					DNS: SiteDNS{
						Class:     core.ClassSingleThird,
						Providers: []string{"dyn.example"},
						Pairs:     []NSPair{{Host: "ns1.dyn.example.", Class: Third, Evidence: "tld", Entity: "dyn.example"}},
					},
				},
			},
			"b.example": {Fingerprint: "fp-b", NSDone: true},
		},
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("roundtrip mismatch:\ngot  %+v\nwant %+v", got, cp)
	}
}

// TestDecodeCheckpointRejectsBadInput covers every corrupt-input class the
// loader must refuse with a diagnostic: never a partial resume.
func TestDecodeCheckpointRejectsBadInput(t *testing.T) {
	valid := fmt.Sprintf(`{"version":%d,"label":"2020","sites":{}}`, CheckpointVersion)
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "decode checkpoint"},
		{"truncated", valid[:len(valid)/2], "decode checkpoint"},
		{"wrong version", `{"version":99,"sites":{}}`, "version 99"},
		{"zero version", `{"sites":{}}`, "version 0"},
		{"unknown top-level field", fmt.Sprintf(`{"version":%d,"sites":{},"bogus":1}`, CheckpointVersion), "bogus"},
		{"unknown site field", fmt.Sprintf(`{"version":%d,"sites":{"a":{"doone":true}}}`, CheckpointVersion), "doone"},
		{"trailing data", valid + `{"version":1}`, "trailing data"},
		{"not json", "checkpoint v1\x00\x01", "decode checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp, err := DecodeCheckpoint(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("decoded %q into %+v, want error", tc.in, cp)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add([]byte(fmt.Sprintf(`{"version":%d,"sites":{}}`, CheckpointVersion)))
	f.Add([]byte(fmt.Sprintf(`{"version":%d,"label":"2016","sites":{"a":{"ns_done":true,"ns":["x."]}}}`, CheckpointVersion)))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(bytes.NewReader(data))
		if err == nil && cp.Version != CheckpointVersion {
			t.Fatalf("accepted version %d", cp.Version)
		}
	})
}

func TestSaveLoadCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	cp := &Checkpoint{Version: CheckpointVersion, Label: "2016", Sites: map[string]*SiteCheckpoint{}}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	// Overwrite — the rename must replace, and no temp files may linger.
	cp.Label = "2020"
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "2020" {
		t.Fatalf("loaded label %q, want 2020", got.Label)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries (temp files left behind?)", len(entries))
	}
}

func TestRunRejectsCheckpointLabelMismatch(t *testing.T) {
	w := checkpointWorld(t, 50, 7, ecosystem.Y2020)
	cfg := checkpointConfig(w)
	cfg.Checkpoint = &Checkpoint{Version: CheckpointVersion, Label: "2016", Sites: map[string]*SiteCheckpoint{}}
	cfg.CheckpointLabel = "2020"
	_, err := Run(context.Background(), w.Sites, cfg)
	if err == nil || !strings.Contains(err.Error(), "label") {
		t.Fatalf("Run = %v, want label mismatch error", err)
	}
}

// errInterrupted is the sentinel the interrupt tests abort a run with.
var errInterrupted = errors.New("interrupted for test")

// TestResumedRunMatchesUninterrupted is the checkpoint equivalence pin: a
// run interrupted mid site-pass and resumed from its last checkpoint
// produces byte-identical Results (same measurement hash) to an
// uninterrupted run on the same world.
func TestResumedRunMatchesUninterrupted(t *testing.T) {
	const scale, seed = 400, 1
	ctx := context.Background()

	w := checkpointWorld(t, scale, seed, ecosystem.Y2020)
	ref, err := Run(ctx, w.Sites, checkpointConfig(w))
	if err != nil {
		t.Fatal(err)
	}
	want := measurementHash(t, ref)

	// Interrupted run: abort at the first mid-pass-2 checkpoint emission
	// (the first emission is the pass-1 boundary), keeping the snapshot.
	var captured *Checkpoint
	emissions := 0
	w2 := checkpointWorld(t, scale, seed, ecosystem.Y2020)
	cfg := checkpointConfig(w2)
	cfg.CheckpointLabel = "2020"
	cfg.CheckpointEvery = 100
	cfg.OnCheckpoint = func(cp *Checkpoint) error {
		emissions++
		captured = cp
		if emissions >= 2 {
			return errInterrupted
		}
		return nil
	}
	if _, err := Run(ctx, w2.Sites, cfg); !errors.Is(err, errInterrupted) {
		t.Fatalf("interrupted run error = %v, want %v", err, errInterrupted)
	}
	if captured == nil {
		t.Fatal("no checkpoint captured")
	}
	done := 0
	for _, sc := range captured.Sites {
		if sc.Done {
			done++
		}
	}
	if done == 0 || done >= scale {
		t.Fatalf("checkpoint has %d done sites, want a strict subset of %d", done, scale)
	}
	if len(captured.Resolver) == 0 {
		t.Fatal("checkpoint carries no resolver cache")
	}

	// Resumed run on a fresh world and resolver.
	w3 := checkpointWorld(t, scale, seed, ecosystem.Y2020)
	cfg3 := checkpointConfig(w3)
	cfg3.CheckpointLabel = "2020"
	cfg3.Checkpoint = captured
	reusedBefore := ckptReused.Value()
	res, err := Run(ctx, w3.Sites, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if got := ckptReused.Value() - reusedBefore; got != int64(done) {
		t.Fatalf("resumed run reused %d checkpointed sites, want %d", got, done)
	}
	if got := measurementHash(t, res); got != want {
		t.Fatalf("resumed measurement hash %s, want uninterrupted %s", got, want)
	}
}

// TestEditedUniverseRemeasuresOnlyChangedSites: resuming a finished run with
// one site's fingerprint changed re-measures exactly that site and still
// produces results identical to a from-scratch run.
func TestEditedUniverseRemeasuresOnlyChangedSites(t *testing.T) {
	const scale, seed = 200, 2020
	ctx := context.Background()

	w := checkpointWorld(t, scale, seed, ecosystem.Y2016)
	fps := make(map[string]string, len(w.Sites))
	for _, s := range w.Sites {
		fps[s] = "fp-" + s
	}

	var final *Checkpoint
	cfg := checkpointConfig(w)
	cfg.CheckpointLabel = "2016"
	cfg.Fingerprints = fps
	cfg.OnCheckpoint = func(cp *Checkpoint) error { final = cp; return nil }
	ref, err := Run(ctx, w.Sites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := measurementHash(t, ref)
	if final == nil {
		t.Fatal("no final checkpoint")
	}

	// "Edit" one site: its fingerprint no longer matches the checkpoint.
	edited := w.Sites[scale/2]
	fps2 := make(map[string]string, len(fps))
	for k, v := range fps {
		fps2[k] = v
	}
	fps2[edited] = "fp-changed"

	w2 := checkpointWorld(t, scale, seed, ecosystem.Y2016)
	cfg2 := checkpointConfig(w2)
	cfg2.CheckpointLabel = "2016"
	cfg2.Fingerprints = fps2
	cfg2.Checkpoint = final
	reusedBefore := ckptReused.Value()
	res, err := Run(ctx, w2.Sites, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ckptReused.Value() - reusedBefore; got != int64(scale-1) {
		t.Fatalf("reused %d sites, want %d (all but the edited one)", got, scale-1)
	}
	if got := measurementHash(t, res); got != want {
		t.Fatalf("incremental re-measurement hash %s, want %s", got, want)
	}
}
