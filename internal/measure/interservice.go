package measure

import (
	"context"
	"fmt"
	"sort"

	"depscope/internal/conc"
	"depscope/internal/core"
	"depscope/internal/publicsuffix"
)

// interService measures the §3.4 provider-to-provider dependencies over the
// providers the site pass discovered:
//
//	CDN→DNS: nameservers of each CDN's CNAME-suffix zone;
//	CA→DNS:  nameservers of each CA's revocation-endpoint zones;
//	CA→CDN:  CNAME chains of the revocation endpoints against the CDN map.
//
// Private per-site infrastructure on its own registrable domain (alias
// CDNs, alias PKI domains) is measured the same way, which is how the
// paper's "additional websites" with hidden dependencies surface.
//
// The providers are independent, so the pass fans out over the shared conc
// pool; results land in order-independent maps, so the run stays
// deterministic. Under conc.Collect a provider whose classification fails is
// recorded and omitted instead of aborting the run.
func (m *measurer) interService(ctx context.Context, res *Results) error {
	// CDN name → representative suffix (shortest, so we land on the zone
	// apex), precomputed at compile time.
	cdnSuffix := m.cdn.shortest

	// Collect the provider population observed in the site pass.
	cdns := make(map[string]bool)
	caHosts := make(map[string][]string) // CA identity → revocation hosts
	for i := range res.Sites {
		sr := &res.Sites[i]
		for _, c := range sr.CDN.Third {
			cdns[c] = true
		}
		for _, c := range sr.CDN.PrivateCDNs {
			// Only private CDNs on their own registrable domain have a
			// separate dependency structure worth measuring.
			if sfx, ok := cdnSuffix[c]; ok &&
				publicsuffix.RegistrableDomain(sfx) != publicsuffix.RegistrableDomain(sr.Site) {
				cdns[c] = true
			}
		}
		if sr.CA.HTTPS && sr.CA.CAName != "" &&
			sr.CA.CAName != publicsuffix.RegistrableDomain(sr.Site) {
			hosts := caHosts[sr.CA.CAName]
			for _, h := range sr.CA.RevocationHosts {
				if !containsStr(hosts, h) {
					hosts = append(hosts, h)
				}
			}
			caHosts[sr.CA.CAName] = hosts
		}
	}

	// CDN → DNS.
	cdnList := sortedKeys(cdns)
	cdnDeps := make([]*ProviderDep, len(cdnList))
	err := conc.ForEach(ctx, len(cdnList), m.cfg.Workers, conc.FailFast, func(ctx context.Context, i int) error {
		cdn := cdnList[i]
		suffix, ok := cdnSuffix[cdn]
		if !ok {
			return nil
		}
		apex := publicsuffix.RegistrableDomain(suffix)
		if apex == "" {
			apex = suffix
		}
		cls, deps, err := m.classifyOwnerDNS(ctx, apex, res.NSConcentration)
		m.diag.observe(stageInterService, err)
		if err != nil {
			if m.cfg.ErrorPolicy == conc.Collect {
				m.diag.record(cdn, stageInterService, err)
				return nil
			}
			return fmt.Errorf("interservice %s dns: %w", cdn, err)
		}
		cdnDeps[i] = &ProviderDep{Provider: cdn, Service: core.DNS, Class: cls, Deps: deps}
		return nil
	})
	if err != nil {
		return err
	}
	for i, dep := range cdnDeps {
		if dep != nil {
			res.CDNToDNS[cdnList[i]] = *dep
		}
	}

	// CA → DNS and CA → CDN.
	caList := make([]string, 0, len(caHosts))
	for ca := range caHosts {
		caList = append(caList, ca)
	}
	sort.Strings(caList)
	caDNSDeps := make([]*ProviderDep, len(caList))
	caCDNDeps := make([]*ProviderDep, len(caList))
	err = conc.ForEach(ctx, len(caList), m.cfg.Workers, conc.FailFast, func(ctx context.Context, i int) error {
		ca := caList[i]
		cls, deps, err := m.classifyOwnerDNS(ctx, ca, res.NSConcentration)
		m.diag.observe(stageInterService, err)
		if err != nil {
			if m.cfg.ErrorPolicy == conc.Collect {
				m.diag.record(ca, stageInterService, err)
			} else {
				return fmt.Errorf("interservice %s dns: %w", ca, err)
			}
		} else {
			caDNSDeps[i] = &ProviderDep{Provider: ca, Service: core.DNS, Class: cls, Deps: deps}
		}

		cdnCls, cdnDeps, err := m.classifyCACDN(ctx, ca, caHosts[ca])
		m.diag.observe(stageInterService, err)
		if err != nil {
			if m.cfg.ErrorPolicy == conc.Collect {
				m.diag.record(ca, stageInterService, err)
				return nil
			}
			return fmt.Errorf("interservice %s cdn: %w", ca, err)
		}
		caCDNDeps[i] = &ProviderDep{Provider: ca, Service: core.CDN, Class: cdnCls, Deps: cdnDeps}
		return nil
	})
	if err != nil {
		return err
	}
	for i := range caList {
		if caDNSDeps[i] != nil {
			res.CAToDNS[caList[i]] = *caDNSDeps[i]
		}
		if caCDNDeps[i] != nil {
			res.CAToCDN[caList[i]] = *caCDNDeps[i]
		}
	}
	return nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// classifyOwnerDNS classifies the nameserver arrangement of a domain that
// has no certificate of its own (providers): TLD match, SOA comparison,
// concentration — the site heuristic minus the SAN rule.
func (m *measurer) classifyOwnerDNS(ctx context.Context, owner string, conc map[string]int) (core.DepClass, []string, error) {
	ns, err := m.cfg.Resolver.NS(ctx, owner)
	if err != nil {
		return core.ClassUnknown, nil, err
	}
	if len(ns) == 0 {
		return core.ClassUnknown, nil, nil
	}
	sort.Strings(ns)
	ownerRD := publicsuffix.RegistrableDomain(owner)
	ownerSOA, haveOwnerSOA, err := m.cfg.Resolver.SOA(ctx, owner)
	if err != nil {
		return core.ClassUnknown, nil, err
	}
	pairs := make([]NSPair, 0, len(ns))
	for _, h := range ns {
		nsRD := publicsuffix.RegistrableDomain(h)
		nsSOA, haveNSSOA, err := m.softSOA(ctx, h)
		if err != nil {
			return core.ClassUnknown, nil, err
		}
		pair := NSPair{Host: h, Class: Unknown, Entity: entityKey(h, nsSOA, haveNSSOA)}
		switch {
		case nsRD != "" && nsRD == ownerRD:
			pair.Class, pair.Evidence = Private, "tld"
		case haveOwnerSOA && haveNSSOA && !soaEqual(ownerSOA, nsSOA):
			pair.Class, pair.Evidence = Third, "soa"
		case conc[nsRD] >= m.cfg.ConcentrationThreshold:
			pair.Class, pair.Evidence = Third, "concentration"
		default:
			// Providers whose SOA matches their nameserver's and that fall
			// under the concentration threshold look private: a provider
			// zone delegating to hosts that share its declared master is
			// operated by that master's owner.
			pair.Class, pair.Evidence = Private, "soa-match"
		}
		pairs = append(pairs, pair)
	}
	cls, deps := reduceDNSPairs(owner, pairs)
	return cls, deps, nil
}

// classifyCACDN detects and classifies CDNs fronting a CA's revocation
// endpoints.
func (m *measurer) classifyCACDN(ctx context.Context, ca string, hosts []string) (core.DepClass, []string, error) {
	caSOA, haveCASOA, err := m.cfg.Resolver.SOA(ctx, ca)
	if err != nil {
		return core.ClassNone, nil, err
	}
	var thirds, privates []string
	seen := make(map[string]bool)
	for _, host := range hosts {
		chain, err := m.cfg.Resolver.CNAMEChain(ctx, host)
		if err != nil {
			continue
		}
		for _, name := range chain {
			cdn, _, ok := m.cdn.Match(name)
			if !ok || seen[cdn] {
				continue
			}
			seen[cdn] = true
			cnameRD := publicsuffix.RegistrableDomain(name)
			switch {
			case cnameRD != "" && cnameRD == ca:
				privates = append(privates, cdn)
			default:
				cnSOA, haveCNSOA, err := m.softSOA(ctx, name)
				if err != nil {
					return core.ClassNone, nil, err
				}
				if haveCASOA && haveCNSOA && soaEqual(caSOA, cnSOA) {
					privates = append(privates, cdn)
				} else {
					thirds = append(thirds, cdn)
				}
			}
		}
	}
	sort.Strings(thirds)
	sort.Strings(privates)
	deps := append(append([]string(nil), thirds...), privates...)
	switch {
	case len(thirds) == 0 && len(privates) == 0:
		return core.ClassNone, nil, nil
	case len(thirds) == 0:
		return core.ClassPrivate, deps, nil
	case len(thirds) == 1 && len(privates) == 0:
		return core.ClassSingleThird, deps, nil
	case len(thirds) >= 2:
		return core.ClassMultiThird, deps, nil
	default:
		return core.ClassPrivatePlusThird, deps, nil
	}
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
