// Package webpage models website landing pages and extracts the hostnames
// that serve page resources — the reproduction of the paper's headless-
// browser (PhantomJS) crawl, which reduced each landing page to the set of
// hostnames serving at least one object.
//
// The bulk pipeline consumes Page values emitted by the ecosystem generator;
// the live path renders a Page to HTML, serves it over net/http, and
// re-extracts the hostnames from the fetched markup, so the extraction code
// is exercised end-to-end in tests and examples.
package webpage

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"depscope/internal/conc"
	"depscope/internal/publicsuffix"
)

// Resource is one object loaded by a landing page.
type Resource struct {
	// URL is the absolute resource URL.
	URL string
	// Host is the lowercase hostname serving the resource.
	Host string
	// Parent links the resource into the page's inclusion tree: 0 means the
	// page itself loaded it; a positive value j means Resources[j-1] loaded
	// it (a script pulling in its own script, a stylesheet importing fonts).
	// Parents always precede children in Resources, so Depth terminates.
	Parent int
}

// Page is a website landing page reduced to its resource set.
type Page struct {
	// Site is the website hostname the page belongs to.
	Site string
	// Resources are the objects the page loads, in inclusion order.
	Resources []Resource

	// hosts caches the sorted distinct host set. Invariant: the cache is
	// valid exactly when hostsLen == len(Resources) — Hosts rebuilds it
	// whenever the slice has grown, so bulk writers appending directly to
	// Resources (the ecosystem generator, chain materialization) stay
	// correct without calling AddResource. Mutating an existing element in
	// place is NOT covered; use the Add helpers or reslice. The measurement
	// pipeline reads each page's hosts once per stage, so recomputing the
	// set (map + sort) per call was pure garbage.
	hostsMu  sync.Mutex
	hosts    []string
	hostsLen int
}

// Hosts returns the distinct resource hostnames, sorted. The cached slice
// is rebuilt whenever len(Resources) has changed since the last call;
// callers must not modify it.
func (p *Page) Hosts() []string {
	p.hostsMu.Lock()
	defer p.hostsMu.Unlock()
	if p.hosts != nil && p.hostsLen == len(p.Resources) {
		return p.hosts
	}
	seen := make(map[string]bool, len(p.Resources))
	for _, r := range p.Resources {
		if r.Host != "" {
			seen[r.Host] = true
		}
	}
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	p.hosts = out
	p.hostsLen = len(p.Resources)
	return out
}

// AddResource appends a page-level resource by URL, deriving the host.
func (p *Page) AddResource(rawURL string) {
	p.AddResourceAt(rawURL, 0)
}

// AddResourceAt appends a resource loaded by an existing resource: parent
// is a 1-based index into Resources (0 means the page itself). It returns
// the new resource's own 1-based index, so callers can chain deeper levels.
// An out-of-range parent panics: inclusion edges must point at resources
// that already exist.
func (p *Page) AddResourceAt(rawURL string, parent int) int {
	if parent < 0 || parent > len(p.Resources) {
		panic(fmt.Sprintf("webpage: resource parent %d out of range [0,%d]", parent, len(p.Resources)))
	}
	host := hostOf(rawURL, p.Site)
	p.Resources = append(p.Resources, Resource{URL: rawURL, Host: host, Parent: parent})
	p.hostsMu.Lock()
	p.hosts = nil
	p.hostsMu.Unlock()
	return len(p.Resources)
}

// Depth returns the inclusion depth of Resources[i]: 1 for a resource the
// page loads directly, parent's depth + 1 otherwise. Malformed parent links
// (out of range or not strictly preceding the child) count as page-level.
func (p *Page) Depth(i int) int {
	depth := 1
	for j := i; ; {
		parent := p.Resources[j].Parent
		if parent <= 0 || parent > j {
			return depth
		}
		depth++
		j = parent - 1
	}
}

// hostOf resolves the host of rawURL; relative URLs belong to site.
func hostOf(rawURL, site string) string {
	u, err := url.Parse(strings.TrimSpace(rawURL))
	if err != nil {
		return ""
	}
	if u.Host == "" {
		if u.Path == "" {
			return ""
		}
		return publicsuffix.Normalize(site)
	}
	return publicsuffix.Normalize(u.Hostname())
}

// RenderHTML produces a deterministic HTML landing page that references
// every resource of p, exercising the attribute forms the extractor parses
// (img src, script src, link href, srcset entries).
func (p *Page) RenderHTML() string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&sb, "  <title>%s</title>\n", p.Site)
	for i, r := range p.Resources {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, "  <script src=\"%s\"></script>\n", r.URL)
		case 1:
			fmt.Fprintf(&sb, "  <link rel=\"stylesheet\" href=\"%s\">\n", r.URL)
		default:
			// handled in body below
		}
	}
	sb.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&sb, "  <h1>%s</h1>\n", p.Site)
	for i, r := range p.Resources {
		switch i % 4 {
		case 2:
			fmt.Fprintf(&sb, "  <img src='%s' alt=\"r%d\">\n", r.URL, i)
		case 3:
			fmt.Fprintf(&sb, "  <img srcset=\"%s 1x, %s 2x\">\n", r.URL, r.URL)
		}
	}
	sb.WriteString("</body>\n</html>\n")
	return sb.String()
}

// ExtractResourceHosts scans HTML markup for resource references (src,
// href, srcset, and CSS url(...) forms) and returns the distinct absolute
// hostnames serving them, with relative references attributed to site.
// It is deliberately tolerant of malformed markup: the measurement only
// needs hostnames, not a DOM.
func ExtractResourceHosts(site, html string) []string {
	seen := make(map[string]bool)
	add := func(raw string) {
		raw = strings.TrimSpace(raw)
		if raw == "" || strings.HasPrefix(raw, "data:") ||
			strings.HasPrefix(raw, "javascript:") || strings.HasPrefix(raw, "#") ||
			strings.HasPrefix(raw, "mailto:") {
			return
		}
		if h := hostOf(raw, site); h != "" {
			seen[h] = true
		}
	}

	for _, attr := range []string{"src", "href", "data-src"} {
		for _, v := range attrValues(html, attr) {
			add(v)
		}
	}
	for _, v := range attrValues(html, "srcset") {
		// srcset is a comma-separated list of "url [descriptor]" entries.
		for _, entry := range strings.Split(v, ",") {
			fields := strings.Fields(entry)
			if len(fields) > 0 {
				add(fields[0])
			}
		}
	}
	for _, v := range cssURLs(html) {
		add(v)
	}

	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// attrValues returns every value of the given attribute in the markup,
// handling single-quoted, double-quoted and unquoted forms.
func attrValues(html, attr string) []string {
	var out []string
	lower := strings.ToLower(html)
	needle := attr + "="
	for i := 0; ; {
		idx := strings.Index(lower[i:], needle)
		if idx < 0 {
			return out
		}
		idx += i
		// Require a boundary before the attribute name so "data-src" is not
		// also matched as "src".
		if idx > 0 {
			prev := lower[idx-1]
			if prev != ' ' && prev != '\t' && prev != '\n' && prev != '\r' && prev != '"' && prev != '\'' {
				i = idx + len(needle)
				continue
			}
		}
		vstart := idx + len(needle)
		if vstart >= len(html) {
			return out
		}
		var val string
		switch html[vstart] {
		case '"':
			end := strings.IndexByte(html[vstart+1:], '"')
			if end < 0 {
				return out
			}
			val = html[vstart+1 : vstart+1+end]
			i = vstart + 1 + end
		case '\'':
			end := strings.IndexByte(html[vstart+1:], '\'')
			if end < 0 {
				return out
			}
			val = html[vstart+1 : vstart+1+end]
			i = vstart + 1 + end
		default:
			end := strings.IndexAny(html[vstart:], " \t\n\r>")
			if end < 0 {
				end = len(html) - vstart
			}
			val = html[vstart : vstart+end]
			i = vstart + end
		}
		out = append(out, val)
	}
}

// cssURLs extracts url(...) references from inline CSS.
func cssURLs(html string) []string {
	var out []string
	lower := strings.ToLower(html)
	for i := 0; ; {
		idx := strings.Index(lower[i:], "url(")
		if idx < 0 {
			return out
		}
		idx += i
		end := strings.IndexByte(html[idx:], ')')
		if end < 0 {
			return out
		}
		val := strings.Trim(html[idx+4:idx+end], " \t'\"")
		out = append(out, val)
		i = idx + end + 1
	}
}

// Fetcher retrieves landing pages. The bulk pipeline uses a generator-backed
// implementation; LiveFetcher does real HTTP.
type Fetcher interface {
	// Fetch returns the landing page of site, or nil if the site does not
	// serve one.
	Fetch(ctx context.Context, site string) (*Page, error)
}

// LiveFetcher fetches pages over HTTP and extracts resource hosts from the
// returned markup.
type LiveFetcher struct {
	// Client is the HTTP client; nil means a 5s-timeout default.
	Client *http.Client
	// BaseURL maps a site name to a URL; when nil, "http://<site>/" is used.
	BaseURL func(site string) string
	// MaxBody caps how much markup is read; zero means 4 MiB.
	MaxBody int64
}

// Fetch implements Fetcher over live HTTP.
func (f *LiveFetcher) Fetch(ctx context.Context, site string) (*Page, error) {
	client := f.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	target := "http://" + site + "/"
	if f.BaseURL != nil {
		target = f.BaseURL(site)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("webpage: fetch %s: %w", site, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("webpage: fetch %s: status %s", site, resp.Status)
	}
	maxBody := f.MaxBody
	if maxBody == 0 {
		maxBody = 4 << 20
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	page := &Page{Site: site}
	for _, h := range ExtractResourceHosts(site, string(body)) {
		page.Resources = append(page.Resources, Resource{Host: h})
	}
	return page, nil
}

// CrawlResult pairs a site with its fetched page or error.
type CrawlResult struct {
	Site string
	Page *Page
	Err  error
}

// CrawlAll fetches the landing pages of many sites concurrently (the
// paper's 100K-page crawl stage). Results arrive in input order; a site's
// fetch error is recorded, not fatal. workers <= 0 means 8.
func CrawlAll(ctx context.Context, f Fetcher, sites []string, workers int) []CrawlResult {
	if workers <= 0 {
		workers = 8
	}
	out := make([]CrawlResult, len(sites))
	err := conc.ForEach(ctx, len(sites), workers, conc.Collect, func(ctx context.Context, i int) error {
		page, ferr := f.Fetch(ctx, sites[i])
		out[i] = CrawlResult{Site: sites[i], Page: page, Err: ferr}
		return nil
	})
	if err != nil {
		// Cancellation stops the pool before every site is claimed; the
		// unclaimed slots still owe the caller a per-site result.
		for i := range out {
			if out[i].Site == "" {
				out[i] = CrawlResult{Site: sites[i], Err: err}
			}
		}
	}
	return out
}
