package webpage

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

func TestExtractResourceHosts(t *testing.T) {
	html := `<!DOCTYPE html>
<html><head>
  <script src="https://static.yimg.example/js/app.js"></script>
  <link rel="stylesheet" href='https://fonts.thirdparty.example/css?family=X'>
  <link rel="canonical" href="https://yahoo.example/">
  <style>body { background: url("https://cdn.images.example/bg.png"); }</style>
</head><body>
  <img src=//protocol-relative.example/logo.png>
  <img src="/local/banner.png">
  <img srcset="https://a.example/1.png 1x, https://b.example/2.png 2x">
  <img data-src="https://lazy.example/x.png">
  <a href="mailto:x@y.example">mail</a>
  <a href="#frag">frag</a>
  <img src="data:image/png;base64,AAAA">
  <script src='javascript:void(0)'></script>
</body></html>`
	got := ExtractResourceHosts("yahoo.example", html)
	want := []string{
		"a.example", "b.example", "cdn.images.example", "fonts.thirdparty.example",
		"lazy.example", "protocol-relative.example", "static.yimg.example",
		"yahoo.example", // canonical link + relative img
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractResourceHosts:\n got %v\nwant %v", got, want)
	}
}

func TestExtractHandlesUnquotedAndMalformed(t *testing.T) {
	html := `<img src=https://unquoted.example/a.png><img src= <img src="https://x.example/y">`
	got := ExtractResourceHosts("site.example", html)
	found := map[string]bool{}
	for _, h := range got {
		found[h] = true
	}
	if !found["unquoted.example"] {
		t.Errorf("unquoted src missed: %v", got)
	}
	// Malformed fragments must not panic and must not invent hosts.
	ExtractResourceHosts("site.example", `<img src="`)
	ExtractResourceHosts("site.example", `url(`)
	ExtractResourceHosts("site.example", "")
}

func TestDataSrcBoundary(t *testing.T) {
	// "data-src" must not be double-counted through the bare "src" scan.
	html := `<img data-src="https://only-lazy.example/x.png">`
	got := ExtractResourceHosts("s.example", html)
	if len(got) != 1 || got[0] != "only-lazy.example" {
		t.Errorf("got %v", got)
	}
}

func TestPageHostsAndAddResource(t *testing.T) {
	p := &Page{Site: "shop.example"}
	p.AddResource("https://img.shop.example/a.png")
	p.AddResource("https://img.shop.example/b.png")
	p.AddResource("/relative/c.css")
	p.AddResource("https://cdn.partner.example/d.js")
	got := p.Hosts()
	want := []string{"cdn.partner.example", "img.shop.example", "shop.example"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Hosts = %v, want %v", got, want)
	}
}

// TestHostsCacheBulkAppend is the regression test for the stale-cache bug:
// appending straight to Resources (the bulk generator path) used to leave
// Hosts() serving the pre-append set forever, because only AddResource
// invalidated the cache. The invariant is now length-based: Hosts()
// rebuilds whenever len(Resources) differs from the cached length.
func TestHostsCacheBulkAppend(t *testing.T) {
	p := &Page{Site: "bulk.example"}
	p.AddResource("https://first.example/a.js")
	if got := p.Hosts(); !reflect.DeepEqual(got, []string{"first.example"}) {
		t.Fatalf("warm-up Hosts = %v", got)
	}
	// Direct slice append, bypassing AddResource.
	p.Resources = append(p.Resources, Resource{URL: "https://second.example/b.js", Host: "second.example"})
	got := p.Hosts()
	want := []string{"first.example", "second.example"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Hosts after direct append = %v, want %v (stale cache)", got, want)
	}
}

func TestAddResourceAtAndDepth(t *testing.T) {
	p := &Page{Site: "site.example"}
	p.AddResource("https://page-asset.example/a.css") // index 1, depth 1
	js := p.AddResourceAt("https://analytics.example/t.js", 0)
	if js != 2 {
		t.Fatalf("AddResourceAt index = %d, want 2", js)
	}
	beacon := p.AddResourceAt("https://beacon.example/b.gif", js) // depth 2
	deep := p.AddResourceAt("https://deep.example/d.js", beacon)  // depth 3
	for i, want := range map[int]int{0: 1, 1: 1, js - 1: 1, beacon - 1: 2, deep - 1: 3} {
		if got := p.Depth(i); got != want {
			t.Errorf("Depth(%d) = %d, want %d", i, got, want)
		}
	}
	// Malformed parent links (self/forward references) degrade to depth 1.
	q := &Page{Site: "bad.example", Resources: []Resource{{Host: "x.example", Parent: 1}}}
	if got := q.Depth(0); got != 1 {
		t.Errorf("self-parent Depth = %d, want 1", got)
	}
	hosts := p.Hosts()
	want := []string{"analytics.example", "beacon.example", "deep.example", "page-asset.example"}
	if !reflect.DeepEqual(hosts, want) {
		t.Errorf("Hosts = %v, want %v", hosts, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range parent should panic")
			}
		}()
		p.AddResourceAt("https://x.example/x", 99)
	}()
}

func TestRenderExtractRoundTrip(t *testing.T) {
	p := &Page{Site: "news.example"}
	urls := []string{
		"https://static.news.example/app.js",
		"https://styles.news.example/main.css",
		"https://images.cdnprovider.example/hero.jpg",
		"https://tracker.ads.example/pixel.gif",
		"https://fonts.provider.example/font.woff2",
	}
	for _, u := range urls {
		p.AddResource(u)
	}
	got := ExtractResourceHosts(p.Site, p.RenderHTML())
	want := p.Hosts()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("render/extract round trip:\n got %v\nwant %v", got, want)
	}
}

// TestLiveFetcher serves a rendered page over real HTTP and verifies the
// fetched host set matches the page definition.
func TestLiveFetcher(t *testing.T) {
	p := &Page{Site: "live.example"}
	p.AddResource("https://assets.live.example/a.js")
	p.AddResource("https://edge-77.fastcdn.example/b.css")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(p.RenderHTML()))
	}))
	defer srv.Close()

	f := &LiveFetcher{BaseURL: func(string) string { return srv.URL }}
	got, err := f.Fetch(context.Background(), "live.example")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Hosts(), p.Hosts()) {
		t.Errorf("live fetch hosts = %v, want %v", got.Hosts(), p.Hosts())
	}
}

func TestLiveFetcherErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	f := &LiveFetcher{BaseURL: func(string) string { return srv.URL }}
	if _, err := f.Fetch(context.Background(), "down.example"); err == nil {
		t.Error("expected error on 503")
	}
	f2 := &LiveFetcher{BaseURL: func(string) string { return "http://127.0.0.1:1/" }}
	if _, err := f2.Fetch(context.Background(), "unreachable.example"); err == nil {
		t.Error("expected error on refused connection")
	}
}

func BenchmarkExtractResourceHosts(b *testing.B) {
	p := &Page{Site: "bench.example"}
	for i := 0; i < 40; i++ {
		p.AddResource("https://static.bench.example/asset.js")
		p.AddResource("https://edge.cdn.example/img.png")
	}
	html := p.RenderHTML()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractResourceHosts("bench.example", html)
	}
}

func TestCrawlAll(t *testing.T) {
	// Serve distinct pages per site from one test server; one site 404s.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		site := r.URL.Query().Get("site")
		if site == "down.example" {
			http.NotFound(w, r)
			return
		}
		p := &Page{Site: site}
		p.AddResource("https://static." + site + "/app.js")
		w.Write([]byte(p.RenderHTML()))
	}))
	defer srv.Close()

	f := &LiveFetcher{BaseURL: func(site string) string { return srv.URL + "/?site=" + site }}
	sites := []string{"a.example", "b.example", "down.example", "c.example"}
	results := CrawlAll(context.Background(), f, sites, 3)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Site != sites[i] {
			t.Fatalf("result %d out of order: %s", i, r.Site)
		}
	}
	if results[2].Err == nil {
		t.Error("down.example should error")
	}
	for _, i := range []int{0, 1, 3} {
		if results[i].Err != nil {
			t.Fatalf("%s: %v", sites[i], results[i].Err)
		}
		want := "static." + sites[i]
		hosts := results[i].Page.Hosts()
		found := false
		for _, h := range hosts {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s hosts = %v, want %s", sites[i], hosts, want)
		}
	}
}

func TestCrawlAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &LiveFetcher{BaseURL: func(string) string { return "http://127.0.0.1:1/" }}
	results := CrawlAll(ctx, f, []string{"x.example", "y.example"}, 2)
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%s: expected error after cancel", r.Site)
		}
	}
}
