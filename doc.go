// Package depscope reproduces "Analyzing Third Party Service Dependencies
// in Modern Web Services: Have We Learned from the Mirai-Dyn Incident?"
// (Kashaf, Sekar, Agarwal — ACM IMC 2020) as a self-contained Go system.
//
// The repository root holds the benchmark harness (bench_test.go): one
// benchmark per table and figure of the paper's evaluation, each driving
// the same experiment runner the depscope CLI uses. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// Layout:
//
//	internal/dnsmsg       DNS wire protocol (RFC 1035)
//	internal/dnszone      authoritative zone store
//	internal/dnsserver    UDP/TCP authoritative server
//	internal/resolver     caching stub resolver (wire + in-process)
//	internal/publicsuffix eTLD+1 extraction
//	internal/certs        certificate model + live TLS fetch
//	internal/webpage      landing pages + resource-host extraction
//	internal/ecosystem    calibrated synthetic-Internet generator
//	internal/measure      the paper's §3 measurement pipeline
//	internal/core         dependency graph, concentration/impact metrics
//	internal/analysis     experiment runners (one per table/figure)
//	internal/casestudy    hospitals and smart-home studies (§6)
//	cmd/depscope          full-report CLI
//	cmd/depserver         serve a generated world over real DNS
//	cmd/digsim            dig-style query tool
//	examples/             runnable API walkthroughs
package depscope
