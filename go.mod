module depscope

go 1.22
