#!/bin/sh
# Benchmark driver.
#
#   ./docs/bench.sh [suite] [benchtime]
#
# suite "metrics" (default "all") runs the provider-metrics benchmarks
# (Figure 5/6 renders and the batched C_p/I_p engine microbenchmarks) and
# rewrites BENCH_metrics.json at the repo root. Suite "pipeline" runs the
# staged measurement pipeline benchmarks (BenchmarkMeasureRun plus
# BenchmarkTelemetryOverhead — the same scale-10K workload under its
# telemetry-budget name; compare its ns/op against the pre-instrumentation
# BenchmarkMeasureRun record, budget <= 3%) and APPENDS one JSON record per
# benchmark, stamped with the run time, to BENCH_pipeline.json — keeping a
# history so pipeline regressions show up across commits. Suite "incident"
# runs the incident-engine sweep (top-100 single-provider outages at scale
# 2K through incident.Sweep) and rewrites BENCH_incident.json. Suite "all"
# runs all three.
#
# Suite "compare" runs every recorded benchmark fresh and diffs its ns/op
# against the committed BENCH_*.json records (for the append-history
# pipeline file, against the most recent record per benchmark) without
# rewriting any of them. A benchmark more than 10% slower than its record
# fails the comparison; benchmarks present on only one side are reported
# and skipped.
set -eu

cd "$(dirname "$0")/.."
suite="${1:-all}"
benchtime="${2:-1s}"

# bench_json RAWFILE: convert `go test -bench` output to a stream of JSON
# objects, one per benchmark line (no surrounding array).
bench_json() {
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = ""; bytes = ""; allocs = ""
		for (i = 2; i <= NF; i++) {
			if ($(i) == "ns/op")     ns = $(i - 1)
			if ($(i) == "B/op")      bytes = $(i - 1)
			if ($(i) == "allocs/op") allocs = $(i - 1)
		}
		if (ns == "") next
		printf "{\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
		if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
		if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
		print "}"
	}
	' "$1"
}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

if [ "$suite" = "compare" ]; then
	go test -run '^$' \
		-bench 'BenchmarkFigure5ProviderConcentration|BenchmarkFigure6ConcentrationCDF|BenchmarkTopProvidersBatch' \
		-benchmem -benchtime "$benchtime" ./... | tee "$raw"
	go test -run '^$' -bench 'BenchmarkMeasureRun$|BenchmarkTelemetryOverhead$' \
		-benchmem -benchtime 2x ./internal/measure/ | tee -a "$raw"
	go test -run '^$' -bench 'BenchmarkIncidentSweep$' \
		-benchmem -benchtime 5x ./internal/incident/ | tee -a "$raw"

	fresh=$(mktemp)
	report=$(mktemp)
	trap 'rm -f "$raw" "$fresh" "$report"' EXIT
	bench_json "$raw" > "$fresh"

	# Join fresh ns/op against the committed records. Both sides are one
	# JSON object per line; for the committed side, later lines overwrite
	# earlier ones, which picks the most recent record out of the pipeline
	# history file.
	status=0
	awk -v freshfile="$fresh" '
	function field(s, key,    r) {
		if (!match(s, "\"" key "\": \"?[^,}\"]+")) return ""
		r = substr(s, RSTART, RLENGTH)
		sub("^\"" key "\": \"?", "", r)
		return r
	}
	{
		name = field($0, "name")
		ns = field($0, "ns_per_op")
		if (name == "" || ns == "") next
		if (FILENAME == freshfile) freshns[name] = ns + 0
		else committed[name] = ns + 0
	}
	END {
		bad = 0
		for (name in freshns) {
			if (!(name in committed)) {
				printf "new        %-55s %14.0f ns/op (no committed record)\n", name, freshns[name]
				continue
			}
			old = committed[name]
			cur = freshns[name]
			verdict = "ok"
			if (cur > old * 1.10) { verdict = "REGRESSED"; bad = 1 }
			printf "%-10s %-55s %14.0f -> %.0f ns/op (%+.1f%%)\n", verdict, name, old, cur, (cur - old) / old * 100
		}
		for (name in committed) {
			if (!(name in freshns))
				printf "missing    %-55s committed record was not exercised\n", name
		}
		exit bad
	}
	' BENCH_metrics.json BENCH_pipeline.json BENCH_incident.json "$fresh" > "$report" || status=1
	sort "$report"
	if [ "$status" -ne 0 ]; then
		echo "bench compare: ns/op regression above 10%" >&2
	fi
	exit "$status"
fi

if [ "$suite" = "metrics" ] || [ "$suite" = "all" ]; then
	out=BENCH_metrics.json
	go test -run '^$' \
		-bench 'BenchmarkFigure5ProviderConcentration|BenchmarkFigure6ConcentrationCDF|BenchmarkTopProvidersBatch' \
		-benchmem -benchtime "$benchtime" ./... | tee "$raw"
	{
		echo "["
		bench_json "$raw" | sed '$!s/$/,/; s/^/  /'
		echo "]"
	} > "$out"
	echo "wrote $out"
fi

if [ "$suite" = "pipeline" ] || [ "$suite" = "all" ]; then
	out=BENCH_pipeline.json
	# One iteration of the full 10K-site pipeline is the unit of interest;
	# -benchtime 2x keeps the suite bounded while still averaging a warm run.
	go test -run '^$' -bench 'BenchmarkMeasureRun$|BenchmarkTelemetryOverhead$' \
		-benchmem -benchtime 2x ./internal/measure/ | tee "$raw"
	stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
	bench_json "$raw" | sed "s/^{/{\"utc\": \"$stamp\", /" >> "$out"
	echo "appended to $out"
fi

if [ "$suite" = "incident" ] || [ "$suite" = "all" ]; then
	out=BENCH_incident.json
	# One iteration sweeps 100 single-provider scenarios; a handful of
	# iterations averages warm caches without dragging the suite out.
	go test -run '^$' -bench 'BenchmarkIncidentSweep$' \
		-benchmem -benchtime 5x ./internal/incident/ | tee "$raw"
	{
		echo "["
		bench_json "$raw" | sed '$!s/$/,/; s/^/  /'
		echo "]"
	} > "$out"
	echo "wrote $out"
fi
