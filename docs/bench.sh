#!/bin/sh
# Benchmark driver.
#
#   ./docs/bench.sh [suite] [benchtime]
#
# suite "metrics" (default "all") runs the provider-metrics benchmarks
# (Figure 5/6 renders and the batched C_p/I_p engine microbenchmarks) and
# rewrites BENCH_metrics.json at the repo root. Suite "pipeline" runs the
# staged measurement pipeline benchmarks (BenchmarkMeasureRun plus
# BenchmarkTelemetryOverhead — the same scale-10K workload under its
# telemetry-budget name; compare its ns/op against the pre-instrumentation
# BenchmarkMeasureRun record, budget <= 3%) and APPENDS one JSON record per
# benchmark, stamped with the run time, to BENCH_pipeline.json — keeping a
# history so pipeline regressions show up across commits. Suite "incident"
# runs the incident-engine sweep (top-100 single-provider outages at scale
# 2K through incident.Sweep) and rewrites BENCH_incident.json. Suite
# "serve" starts a real depserver (scale 2000, -prewarm), drives it with
# cmd/depload over the default endpoint mix, and rewrites BENCH_serve.json
# with the measured qps and p50/p99 latencies (ns_per_op is the p50).
# Suite "serve-smoke" is the CI-sized version (scale 300, 1s, no file
# written) wired into make verify. Suite "delta" runs the incremental graph
# engine benchmark (a single-site delta vs a full graph rebuild at 2K and
# 100K), rewrites BENCH_delta.json, and fails unless the 100K delta arm is
# at least 10x faster than the rebuild arm. Suite "chain" runs the
# chain-enabled measurement pipeline benchmark (BenchmarkChainMeasure: all
# four passes with resource chains materialized, a 2K arm and the
# paper-scale 100K arm) and rewrites BENCH_chain.json; the edges/s metric
# in the raw output is informational — only ns/op is recorded and compared.
# Suite "scale" runs the columnar-engine scale benchmarks
# (BenchmarkGraphBytes: pointer vs compact graph construction at 100K with
# the retained bytes_per_site metric; BenchmarkMeasureRun1M: the full
# 1M-site compact pipeline under an 8GiB budget, one iteration), rewrites
# BENCH_scale.json, and fails unless the compact arm's bytes_per_site is
# at least 4x below the pointer arm's. Suite "scale-smoke" is the CI-sized
# budget exercise wired into make verify: a 50K -compact depscope run must
# complete under a workable budget AND fail fast under an impossible one;
# no record written. Suite "all" runs metrics, pipeline, incident, delta,
# chain and serve — not scale, whose 1M arm is a multi-minute run invoked
# deliberately via make bench-scale.
#
# Every record-writing suite warns when a recorded line ran with fewer than
# 2 iterations (a single sample is noise-prone); BenchmarkMeasureRun1M is
# the deliberate exception — one iteration IS a full 1M-site run.
#
# Suite "compare" runs every recorded benchmark fresh — including a serve
# load run — and diffs its ns/op against the committed BENCH_*.json records
# (for the append-history pipeline file, against the most recent record per
# benchmark) without rewriting any of them. A benchmark more than 10%
# slower than its record fails the comparison (25% for the LoadServe*
# records: wall-clock HTTP latency under OS scheduling jitter is noisier
# than cooked go-bench averages); bytes_per_op and bytes_per_site are also
# diffed, with a 15% band; benchmarks present on only one side are
# reported and skipped.
set -eu

cd "$(dirname "$0")/.."
suite="${1:-all}"
benchtime="${2:-1s}"

# bench_json RAWFILE: convert `go test -bench` output to a stream of JSON
# objects, one per benchmark line (no surrounding array).
bench_json() {
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = ""; bytes = ""; allocs = ""; persite = ""
		for (i = 2; i <= NF; i++) {
			if ($(i) == "ns/op")          ns = $(i - 1)
			if ($(i) == "B/op")           bytes = $(i - 1)
			if ($(i) == "allocs/op")      allocs = $(i - 1)
			if ($(i) == "bytes_per_site") persite = $(i - 1)
		}
		if (ns == "") next
		printf "{\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
		if (bytes != "")   printf ", \"bytes_per_op\": %s", bytes
		if (allocs != "")  printf ", \"allocs_per_op\": %s", allocs
		if (persite != "") printf ", \"bytes_per_site\": %s", persite
		print "}"
	}
	' "$1"
}

# warn_low_iters RAWFILE: a recorded ns/op averaged over a single iteration
# is one noisy sample, not a benchmark; flag it. BenchmarkMeasureRun1M is
# exempt — its unit of interest is one complete 1M-site run.
warn_low_iters() {
	awk '
	/^Benchmark/ && / ns\/op/ && $1 !~ /^BenchmarkMeasureRun1M/ && $2 + 0 < 2 {
		printf "warning: %s recorded with %d iteration(s); raise -benchtime so the record averages >= 2\n", $1, $2
	}
	' "$1" >&2
}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Scale/duration of the recorded serve load run; the smoke run shrinks both.
SERVE_SCALE=2000
SERVE_DURATION=5s
SERVE_CONC=32
SERVE_SITES=500

# run_serve SCALE DURATION CONC SITES: build depserver+depload, bring a
# prewarmed server up on ephemeral ports, run the timed load phase and print
# depload's JSON records (one per endpoint) on stdout. The server's logs
# stay in a temp file unless something fails.
run_serve() {
	bindir=$(mktemp -d)
	go build -o "$bindir/depserver" ./cmd/depserver
	go build -o "$bindir/depload" ./cmd/depload
	"$bindir/depserver" -scale "$1" -addr 127.0.0.1:0 -http 127.0.0.1:0 -prewarm \
		>"$bindir/depserver.log" 2>&1 &
	serve_pid=$!
	admin=""
	for _ in $(seq 1 100); do
		admin=$(sed -n 's|.*admin endpoint on http://\([^/]*\)/metrics.*|\1|p' "$bindir/depserver.log")
		[ -n "$admin" ] && break
		kill -0 "$serve_pid" 2>/dev/null || break
		sleep 0.1
	done
	if [ -z "$admin" ]; then
		echo "depserver did not come up:" >&2
		cat "$bindir/depserver.log" >&2
		kill "$serve_pid" 2>/dev/null || true
		rm -rf "$bindir"
		return 1
	fi
	rc=0
	"$bindir/depload" -addr "http://$admin" -duration "$2" -concurrency "$3" \
		-sites "$4" -fail-on-error || rc=$?
	kill "$serve_pid" 2>/dev/null || true
	wait "$serve_pid" 2>/dev/null || true
	rm -rf "$bindir"
	return "$rc"
}

if [ "$suite" = "compare" ]; then
	go test -run '^$' \
		-bench 'BenchmarkFigure5ProviderConcentration|BenchmarkFigure6ConcentrationCDF|BenchmarkTopProvidersBatch|BenchmarkDeltaApply' \
		-benchmem -benchtime "$benchtime" ./... | tee "$raw"
	go test -run '^$' -bench 'BenchmarkMeasureRun$|BenchmarkTelemetryOverhead$' \
		-benchmem -benchtime 3x ./internal/measure/ | tee -a "$raw"
	go test -run '^$' -bench 'BenchmarkIncidentSweep$|BenchmarkIncidentMonteCarlo$' \
		-benchmem -benchtime 5x ./internal/incident/ | tee -a "$raw"
	go test -run '^$' -bench 'BenchmarkChainMeasure' \
		-benchmem -benchtime 3x ./internal/measure/ | tee -a "$raw"
	# The scale suite's 1M arm is deliberately not re-run here (it is a
	# multi-minute full pipeline); it shows up as "missing", which does not
	# fail the comparison. The 100K bytes_per_site arms are cheap enough.
	go test -run '^$' -bench 'BenchmarkGraphBytes' \
		-benchmem -benchtime 3x -timeout 20m . | tee -a "$raw"

	fresh=$(mktemp)
	report=$(mktemp)
	trap 'rm -f "$raw" "$fresh" "$report"' EXIT
	bench_json "$raw" > "$fresh"
	# The serve load records are produced by depload directly, not go test.
	run_serve "$SERVE_SCALE" "$SERVE_DURATION" "$SERVE_CONC" "$SERVE_SITES" >> "$fresh"

	# Join fresh ns/op against the committed records. Both sides are one
	# JSON object per line; for the committed side, later lines overwrite
	# earlier ones, which picks the most recent record out of the pipeline
	# history file.
	status=0
	awk -v freshfile="$fresh" '
	function field(s, key,    r) {
		# Tolerates both pretty ("key": v) and compact ("key":v) JSON — the
		# depload records are compact, the bench_json ones are not.
		if (!match(s, "\"" key "\": ?\"?[^,}\"]+")) return ""
		r = substr(s, RSTART, RLENGTH)
		sub("^\"" key "\": ?\"?", "", r)
		return r
	}
	{
		name = field($0, "name")
		ns = field($0, "ns_per_op")
		if (name == "" || ns == "") next
		b = field($0, "bytes_per_op")
		ps = field($0, "bytes_per_site")
		if (FILENAME == freshfile) {
			freshns[name] = ns + 0
			if (b != "")  freshb[name] = b + 0
			if (ps != "") freshps[name] = ps + 0
		} else {
			committed[name] = ns + 0
			if (b != "")  commb[name] = b + 0
			if (ps != "") commps[name] = ps + 0
		}
	}
	# check NAME OLD CUR LIMIT UNIT: print one verdict line; return 1 on a
	# regression beyond the band.
	function check(name, old, cur, limit, unit,    verdict) {
		verdict = "ok"
		if (cur > old * limit) verdict = "REGRESSED"
		printf "%-10s %-55s %14.0f -> %.0f %s (%+.1f%%)\n", verdict, name, old, cur, unit, (cur - old) / old * 100
		return verdict == "REGRESSED"
	}
	END {
		bad = 0
		for (name in freshns) {
			if (!(name in committed)) {
				printf "new        %-55s %14.0f ns/op (no committed record)\n", name, freshns[name]
				continue
			}
			# Wall-clock HTTP latency (LoadServe*) jitters more than cooked
			# go-bench averages; give it a wider band. Allocation footprints
			# (bytes_per_op, bytes_per_site) are steadier than timings but a
			# GC-sampled retained heap still wobbles: 15% band.
			limit = (name ~ /^LoadServe/) ? 1.25 : 1.10
			bad += check(name, committed[name], freshns[name], limit, "ns/op")
			if ((name in freshb) && (name in commb) && commb[name] > 0)
				bad += check(name, commb[name], freshb[name], 1.15, "B/op")
			if ((name in freshps) && (name in commps) && commps[name] > 0)
				bad += check(name, commps[name], freshps[name], 1.15, "bytes_per_site")
		}
		for (name in committed) {
			if (!(name in freshns))
				printf "missing    %-55s committed record was not exercised\n", name
		}
		exit bad > 0
	}
	' BENCH_metrics.json BENCH_pipeline.json BENCH_incident.json BENCH_delta.json BENCH_chain.json BENCH_scale.json BENCH_serve.json "$fresh" > "$report" || status=1
	sort "$report"
	if [ "$status" -ne 0 ]; then
		echo "bench compare: regression above the allowed band (ns/op, B/op or bytes_per_site)" >&2
	fi
	exit "$status"
fi

if [ "$suite" = "serve-smoke" ]; then
	# CI-sized end-to-end exercise of the serve path: tiny world, short
	# timed phase, any failed request fails the target; no record written.
	run_serve 300 1s 8 100 > /dev/null
	echo "serve smoke ok"
	exit 0
fi

if [ "$suite" = "serve" ] || [ "$suite" = "all" ]; then
	out=BENCH_serve.json
	records=$(mktemp)
	run_serve "$SERVE_SCALE" "$SERVE_DURATION" "$SERVE_CONC" "$SERVE_SITES" > "$records"
	{
		echo "["
		sed '$!s/$/,/; s/^/  /' "$records"
		echo "]"
	} > "$out"
	rm -f "$records"
	echo "wrote $out"
fi

if [ "$suite" = "metrics" ] || [ "$suite" = "all" ]; then
	out=BENCH_metrics.json
	go test -run '^$' \
		-bench 'BenchmarkFigure5ProviderConcentration|BenchmarkFigure6ConcentrationCDF|BenchmarkTopProvidersBatch' \
		-benchmem -benchtime "$benchtime" ./... | tee "$raw"
	warn_low_iters "$raw"
	{
		echo "["
		bench_json "$raw" | sed '$!s/$/,/; s/^/  /'
		echo "]"
	} > "$out"
	echo "wrote $out"
fi

if [ "$suite" = "pipeline" ] || [ "$suite" = "all" ]; then
	out=BENCH_pipeline.json
	# One iteration of the full 10K-site pipeline is the unit of interest;
	# -benchtime 3x keeps the suite bounded while averaging enough warm runs
	# that the recorded ns/op is not a single sample.
	go test -run '^$' -bench 'BenchmarkMeasureRun$|BenchmarkTelemetryOverhead$' \
		-benchmem -benchtime 3x ./internal/measure/ | tee "$raw"
	warn_low_iters "$raw"
	stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
	bench_json "$raw" | sed "s/^{/{\"utc\": \"$stamp\", /" >> "$out"
	echo "appended to $out"
fi

if [ "$suite" = "delta" ] || [ "$suite" = "all" ]; then
	out=BENCH_delta.json
	go test -run '^$' -bench 'BenchmarkDeltaApply' \
		-benchmem -benchtime "$benchtime" ./internal/core/ | tee "$raw"
	warn_low_iters "$raw"
	{
		echo "["
		bench_json "$raw" | sed '$!s/$/,/; s/^/  /'
		echo "]"
	} > "$out"
	echo "wrote $out"
	# Acceptance gate: at the paper's 100K scale, applying a single-site
	# delta must beat a from-scratch rebuild by at least 10x.
	awk '
	/"name": "BenchmarkDeltaApply\/delta\/100K"/   { if (match($0, /"ns_per_op": [0-9.e+]+/)) d = substr($0, RSTART + 13, RLENGTH - 13) + 0 }
	/"name": "BenchmarkDeltaApply\/rebuild\/100K"/ { if (match($0, /"ns_per_op": [0-9.e+]+/)) r = substr($0, RSTART + 13, RLENGTH - 13) + 0 }
	END {
		if (d == 0 || r == 0) { print "delta suite: missing 100K records" > "/dev/stderr"; exit 1 }
		printf "delta speedup at 100K: %.1fx (delta %.0f ns/op vs rebuild %.0f ns/op)\n", r / d, d, r
		if (r / d < 10) { print "delta suite: speedup below the required 10x" > "/dev/stderr"; exit 1 }
	}
	' "$out"
fi

if [ "$suite" = "chain" ] || [ "$suite" = "all" ]; then
	out=BENCH_chain.json
	# A single chain-enabled pipeline run is the unit of interest, and the
	# 100K arm is a full paper-scale measurement — but one iteration is one
	# noisy sample, so the record averages three.
	go test -run '^$' -bench 'BenchmarkChainMeasure' \
		-benchmem -benchtime 3x -timeout 20m ./internal/measure/ | tee "$raw"
	warn_low_iters "$raw"
	{
		echo "["
		bench_json "$raw" | sed '$!s/$/,/; s/^/  /'
		echo "]"
	} > "$out"
	echo "wrote $out"
fi

if [ "$suite" = "scale" ]; then
	out=BENCH_scale.json
	# Two benchmarks: the 100K bytes_per_site comparison (three iterations —
	# the retained-heap metric is steadier than timings but still sampled),
	# and the 1M-site end-to-end compact run, whose single iteration IS the
	# measurement (generate + stream-measure + columnar build under 8GiB).
	go test -run '^$' -bench 'BenchmarkGraphBytes' \
		-benchmem -benchtime 3x -timeout 20m . | tee "$raw"
	go test -run '^$' -bench 'BenchmarkMeasureRun1M$' \
		-benchmem -benchtime 1x -timeout 60m . | tee -a "$raw"
	warn_low_iters "$raw"
	{
		echo "["
		bench_json "$raw" | sed '$!s/$/,/; s/^/  /'
		echo "]"
	} > "$out"
	echo "wrote $out"
	# Acceptance gate: the columnar graph must retain at least 4x fewer
	# bytes per site than the pointer graph at the paper's 100K scale.
	awk '
	/"name": "BenchmarkGraphBytes\/pointer-100K"/ { if (match($0, /"bytes_per_site": [0-9.e+]+/)) p = substr($0, RSTART + 18, RLENGTH - 18) + 0 }
	/"name": "BenchmarkGraphBytes\/compact-100K"/ { if (match($0, /"bytes_per_site": [0-9.e+]+/)) c = substr($0, RSTART + 18, RLENGTH - 18) + 0 }
	END {
		if (p == 0 || c == 0) { print "scale suite: missing bytes_per_site records" > "/dev/stderr"; exit 1 }
		printf "compact graph advantage at 100K: %.1fx (%.0f vs %.0f bytes/site)\n", p / c, c, p
		if (p / c < 4) { print "scale suite: bytes_per_site advantage below the required 4x" > "/dev/stderr"; exit 1 }
	}
	' "$out"
fi

if [ "$suite" = "scale-smoke" ]; then
	# CI-sized budget exercise: the same -compact/-mem-budget path the 1M
	# run uses, at 50K. A workable budget must complete; an impossibly small
	# one must fail fast with the budget error, not crawl or OOM.
	bindir=$(mktemp -d)
	go build -o "$bindir/depscope" ./cmd/depscope
	"$bindir/depscope" -scale 50000 -mem-budget 4GiB -q -experiment table1 > /dev/null
	if out=$("$bindir/depscope" -scale 50000 -mem-budget 32MiB -q -experiment table1 2>&1 >/dev/null); then
		echo "scale smoke: 32MiB-budget run unexpectedly succeeded" >&2
		rm -rf "$bindir"
		exit 1
	fi
	rm -rf "$bindir"
	case "$out" in
	*"memory budget exceeded"*) ;;
	*)
		echo "scale smoke: tiny-budget run failed without the budget error:" >&2
		echo "$out" >&2
		exit 1
		;;
	esac
	echo "scale smoke ok (50K compact run completed under 4GiB; 32MiB run failed fast with the budget error)"
	exit 0
fi

if [ "$suite" = "incident" ] || [ "$suite" = "all" ]; then
	out=BENCH_incident.json
	# One iteration sweeps 100 single-provider scenarios (deterministic) or
	# samples 1000 Monte-Carlo draws (randomized); a handful of iterations
	# averages warm caches without dragging the suite out.
	go test -run '^$' -bench 'BenchmarkIncidentSweep$|BenchmarkIncidentMonteCarlo$' \
		-benchmem -benchtime 5x ./internal/incident/ | tee "$raw"
	warn_low_iters "$raw"
	{
		echo "["
		bench_json "$raw" | sed '$!s/$/,/; s/^/  /'
		echo "]"
	} > "$out"
	echo "wrote $out"
fi
