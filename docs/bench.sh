#!/bin/sh
# Benchmark driver.
#
#   ./docs/bench.sh [suite] [benchtime]
#
# suite "metrics" (default "all") runs the provider-metrics benchmarks
# (Figure 5/6 renders and the batched C_p/I_p engine microbenchmarks) and
# rewrites BENCH_metrics.json at the repo root. Suite "pipeline" runs the
# staged measurement pipeline benchmarks (BenchmarkMeasureRun plus
# BenchmarkTelemetryOverhead — the same scale-10K workload under its
# telemetry-budget name; compare its ns/op against the pre-instrumentation
# BenchmarkMeasureRun record, budget <= 3%) and APPENDS one JSON record per
# benchmark, stamped with the run time, to BENCH_pipeline.json — keeping a
# history so pipeline regressions show up across commits. Suite "incident"
# runs the incident-engine sweep (top-100 single-provider outages at scale
# 2K through incident.Sweep) and rewrites BENCH_incident.json. Suite "all"
# runs all three.
set -eu

cd "$(dirname "$0")/.."
suite="${1:-all}"
benchtime="${2:-1s}"

# bench_json RAWFILE: convert `go test -bench` output to a stream of JSON
# objects, one per benchmark line (no surrounding array).
bench_json() {
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = ""; bytes = ""; allocs = ""
		for (i = 2; i <= NF; i++) {
			if ($(i) == "ns/op")     ns = $(i - 1)
			if ($(i) == "B/op")      bytes = $(i - 1)
			if ($(i) == "allocs/op") allocs = $(i - 1)
		}
		if (ns == "") next
		printf "{\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
		if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
		if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
		print "}"
	}
	' "$1"
}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

if [ "$suite" = "metrics" ] || [ "$suite" = "all" ]; then
	out=BENCH_metrics.json
	go test -run '^$' \
		-bench 'BenchmarkFigure5ProviderConcentration|BenchmarkFigure6ConcentrationCDF|BenchmarkTopProvidersBatch' \
		-benchmem -benchtime "$benchtime" ./... | tee "$raw"
	{
		echo "["
		bench_json "$raw" | sed '$!s/$/,/; s/^/  /'
		echo "]"
	} > "$out"
	echo "wrote $out"
fi

if [ "$suite" = "pipeline" ] || [ "$suite" = "all" ]; then
	out=BENCH_pipeline.json
	# One iteration of the full 10K-site pipeline is the unit of interest;
	# -benchtime 2x keeps the suite bounded while still averaging a warm run.
	go test -run '^$' -bench 'BenchmarkMeasureRun$|BenchmarkTelemetryOverhead$' \
		-benchmem -benchtime 2x ./internal/measure/ | tee "$raw"
	stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
	bench_json "$raw" | sed "s/^{/{\"utc\": \"$stamp\", /" >> "$out"
	echo "appended to $out"
fi

if [ "$suite" = "incident" ] || [ "$suite" = "all" ]; then
	out=BENCH_incident.json
	# One iteration sweeps 100 single-provider scenarios; a handful of
	# iterations averages warm caches without dragging the suite out.
	go test -run '^$' -bench 'BenchmarkIncidentSweep$' \
		-benchmem -benchtime 5x ./internal/incident/ | tee "$raw"
	{
		echo "["
		bench_json "$raw" | sed '$!s/$/,/; s/^/  /'
		echo "]"
	} > "$out"
	echo "wrote $out"
fi
