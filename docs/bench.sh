#!/bin/sh
# Runs the provider-metrics benchmarks (Figure 5/6 renders and the batched
# C_p/I_p engine microbenchmarks) with -benchmem and converts the output to
# BENCH_metrics.json at the repo root. Usage: ./docs/bench.sh [benchtime]
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
out=BENCH_metrics.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
	-bench 'BenchmarkFigure5ProviderConcentration|BenchmarkFigure6ConcentrationCDF|BenchmarkTopProvidersBatch' \
	-benchmem -benchtime "$benchtime" ./... | tee "$raw"

awk '
BEGIN { print "["; n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     ns = $(i - 1)
		if ($(i) == "B/op")      bytes = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
	if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
