// Command digsim is a dig-style DNS query tool for the simulated Internet.
// It speaks the real wire protocol (UDP with TCP fallback on truncation)
// against any server — typically cmd/depserver.
//
// Usage:
//
//	digsim [@server:port] name [type]
//	digsim @127.0.0.1:5353 w000001.com NS
//	digsim @127.0.0.1:5353 w000001.com SOA
//	digsim @127.0.0.1:5353 w000001.com AXFR   (full zone transfer over TCP)
//
// Exit status is 0 on NOERROR, 1 on any other response code or error.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"depscope/internal/dnsmsg"
	"depscope/internal/resolver"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: digsim [@server:port] name [A|NS|CNAME|SOA|TXT|AAAA|ANY]")
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("digsim: ")

	server := "127.0.0.1:5353"
	var args []string
	for _, a := range os.Args[1:] {
		if strings.HasPrefix(a, "@") {
			server = strings.TrimPrefix(a, "@")
			continue
		}
		args = append(args, a)
	}
	if len(args) < 1 || len(args) > 2 {
		usage()
	}
	name := args[0]
	qtype := dnsmsg.TypeA
	if len(args) == 2 {
		var ok bool
		qtype, ok = parseType(args[1])
		if !ok {
			usage()
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if qtype == dnsmsg.TypeAXFR {
		start := time.Now()
		records, err := resolver.AXFR(ctx, server, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(";; AXFR %s @%s: %d records\n", dnsmsg.CanonicalName(name), server, len(records))
		for _, r := range records {
			fmt.Println(r.String())
		}
		fmt.Printf(";; transfer time: %v\n", time.Since(start).Round(time.Microsecond))
		return
	}

	r := resolver.New(resolver.NewUDPTransport(server))
	start := time.Now()
	res, err := r.Lookup(ctx, name, qtype)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(";; QUESTION: %s %s @%s\n", dnsmsg.CanonicalName(name), qtype, server)
	fmt.Printf(";; status: %s, %d answer(s), %d authority\n",
		res.RCode, len(res.Answers), len(res.Authority))
	if len(res.Answers) > 0 {
		fmt.Println(";; ANSWER SECTION:")
		for _, a := range res.Answers {
			fmt.Println(a.String())
		}
	}
	if len(res.Authority) > 0 {
		fmt.Println(";; AUTHORITY SECTION:")
		for _, a := range res.Authority {
			fmt.Println(a.String())
		}
	}
	fmt.Printf(";; query time: %v\n", time.Since(start).Round(time.Microsecond))
	if res.RCode != dnsmsg.RCodeSuccess {
		os.Exit(1)
	}
}

func parseType(s string) (dnsmsg.Type, bool) {
	switch strings.ToUpper(s) {
	case "A":
		return dnsmsg.TypeA, true
	case "NS":
		return dnsmsg.TypeNS, true
	case "CNAME":
		return dnsmsg.TypeCNAME, true
	case "SOA":
		return dnsmsg.TypeSOA, true
	case "TXT":
		return dnsmsg.TypeTXT, true
	case "AAAA":
		return dnsmsg.TypeAAAA, true
	case "MX":
		return dnsmsg.TypeMX, true
	case "AXFR":
		return dnsmsg.TypeAXFR, true
	case "ANY":
		return dnsmsg.TypeANY, true
	}
	return 0, false
}
