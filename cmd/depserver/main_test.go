package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"depscope/internal/analysis"
	"depscope/internal/incident"
	"depscope/internal/serve"
)

// One tiny backend for the whole file: its lazy analysis run is built on
// the first simulating request and shared after that.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	mgr := serve.NewManager(context.Background(), func(ctx context.Context) (*analysis.Run, error) {
		return analysis.Execute(ctx, analysis.Options{Scale: 300, Seed: 2020})
	}, serve.WithSeed(2020))
	srv := httptest.NewServer(newAdminMux(mgr))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestIncidentEndpoint(t *testing.T) {
	srv := testServer(t)

	// Bare GET lists the presets.
	code, body := get(t, srv.URL+"/incident")
	if code != http.StatusOK {
		t.Fatalf("GET /incident = %d: %s", code, body)
	}
	var listing struct {
		Presets []string `json:"presets"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Presets) == 0 || listing.Presets[0] != "analytics-compromise" {
		t.Errorf("preset listing = %v", listing.Presets)
	}

	// A preset simulates; the single-target validation must hold.
	code, body = get(t, srv.URL+"/incident?preset=dyn-replay")
	if code != http.StatusOK {
		t.Fatalf("GET ?preset=dyn-replay = %d: %s", code, body)
	}
	var rep incident.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "dyn-replay" || rep.Snapshot != "2016" {
		t.Errorf("report header = %q/%q", rep.Scenario, rep.Snapshot)
	}
	if rep.Validation == nil || !rep.Validation.Match {
		t.Errorf("dyn-replay validation = %+v", rep.Validation)
	}

	// Unknown preset: 400 with the available names.
	code, body = get(t, srv.URL+"/incident?preset=nope")
	if code != http.StatusBadRequest || !strings.Contains(string(body), "dyn-replay") {
		t.Errorf("unknown preset = %d: %s", code, body)
	}

	// POST a custom scenario body.
	resp, err := http.Post(srv.URL+"/incident", "application/json",
		strings.NewReader(`{"name":"custom","targets":{"top_k":1,"top_k_service":"dns"}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST scenario = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "custom" || len(rep.Stages) != 1 {
		t.Errorf("custom report = %+v", rep)
	}

	// POST garbage: 400, not a panic or a 500.
	resp, err = http.Post(srv.URL+"/incident", "application/json",
		strings.NewReader(`{"bogus_field":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST garbage = %d: %s", resp.StatusCode, body)
	}

	// After simulating, the incident metrics must show up in /metrics.
	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{"incident_scenarios_total", "incident_last_down_sites"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestAdminMuxRebuild proves building a second mux in the same process does
// not panic on the expvar re-publish.
func TestAdminMuxRebuild(t *testing.T) {
	srv := testServer(t)
	code, _ := get(t, srv.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Errorf("GET /debug/vars = %d", code)
	}
}

// TestQueryAPIOnRealRun drives the /v1 endpoints against a real (small)
// analysis run: list sites, fetch the top-ranked one, rank providers, and
// read the snapshot metadata the build published.
func TestQueryAPIOnRealRun(t *testing.T) {
	srv := testServer(t)

	code, body := get(t, srv.URL+"/v1/sites?limit=5")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/sites = %d: %s", code, body)
	}
	var listing struct {
		Total int      `json:"total"`
		Sites []string `json:"sites"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Total != 300 || len(listing.Sites) != 5 {
		t.Fatalf("site listing = total %d, %d names", listing.Total, len(listing.Sites))
	}

	code, body = get(t, srv.URL+"/v1/sites/"+listing.Sites[0])
	if code != http.StatusOK {
		t.Fatalf("GET /v1/sites/%s = %d: %s", listing.Sites[0], code, body)
	}
	var site analysis.SiteView
	if err := json.Unmarshal(body, &site); err != nil {
		t.Fatal(err)
	}
	if site.Site != listing.Sites[0] || site.Rank != 1 || len(site.Services) == 0 {
		t.Errorf("site view = %+v", site)
	}

	code, body = get(t, srv.URL+"/v1/providers?metric=ip&service=dns&top=3")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/providers = %d: %s", code, body)
	}
	var ranking struct {
		Metric    string `json:"metric"`
		Total     int    `json:"total"`
		Providers []struct {
			Rank   string `json:"-"`
			Name   string `json:"name"`
			Impact int    `json:"impact"`
		} `json:"providers"`
	}
	if err := json.Unmarshal(body, &ranking); err != nil {
		t.Fatal(err)
	}
	if ranking.Metric != "ip" || len(ranking.Providers) != 3 || ranking.Total < 3 {
		t.Errorf("ranking = %+v", ranking)
	}
	if ranking.Providers[0].Impact < ranking.Providers[2].Impact {
		t.Errorf("ranking not descending: %+v", ranking.Providers)
	}

	code, body = get(t, srv.URL+"/v1/snapshot")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/snapshot = %d: %s", code, body)
	}
	var meta struct {
		Ready   bool   `json:"ready"`
		Version uint64 `json:"version"`
		Scale   int    `json:"scale"`
		Seed    int64  `json:"seed"`
	}
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if !meta.Ready || meta.Version != 1 || meta.Scale != 300 || meta.Seed != 2020 {
		t.Errorf("snapshot meta = %+v", meta)
	}
}
