package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"depscope/internal/incident"
)

// One tiny backend for the whole file: its lazy analysis run is built on
// the first simulating request and shared after that.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newAdminMux(&incidentBackend{scale: 300, seed: 2020}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestIncidentEndpoint(t *testing.T) {
	srv := testServer(t)

	// Bare GET lists the presets.
	code, body := get(t, srv.URL+"/incident")
	if code != http.StatusOK {
		t.Fatalf("GET /incident = %d: %s", code, body)
	}
	var listing struct {
		Presets []string `json:"presets"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Presets) == 0 || listing.Presets[0] != "cdn-blackout" {
		t.Errorf("preset listing = %v", listing.Presets)
	}

	// A preset simulates; the single-target validation must hold.
	code, body = get(t, srv.URL+"/incident?preset=dyn-replay")
	if code != http.StatusOK {
		t.Fatalf("GET ?preset=dyn-replay = %d: %s", code, body)
	}
	var rep incident.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "dyn-replay" || rep.Snapshot != "2016" {
		t.Errorf("report header = %q/%q", rep.Scenario, rep.Snapshot)
	}
	if rep.Validation == nil || !rep.Validation.Match {
		t.Errorf("dyn-replay validation = %+v", rep.Validation)
	}

	// Unknown preset: 400 with the available names.
	code, body = get(t, srv.URL+"/incident?preset=nope")
	if code != http.StatusBadRequest || !strings.Contains(string(body), "dyn-replay") {
		t.Errorf("unknown preset = %d: %s", code, body)
	}

	// POST a custom scenario body.
	resp, err := http.Post(srv.URL+"/incident", "application/json",
		strings.NewReader(`{"name":"custom","targets":{"top_k":1,"top_k_service":"dns"}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST scenario = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "custom" || len(rep.Stages) != 1 {
		t.Errorf("custom report = %+v", rep)
	}

	// POST garbage: 400, not a panic or a 500.
	resp, err = http.Post(srv.URL+"/incident", "application/json",
		strings.NewReader(`{"bogus_field":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST garbage = %d: %s", resp.StatusCode, body)
	}

	// After simulating, the incident metrics must show up in /metrics.
	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{"incident_scenarios_total", "incident_last_down_sites"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestAdminMuxRebuild proves building a second mux in the same process does
// not panic on the expvar re-publish.
func TestAdminMuxRebuild(t *testing.T) {
	srv := testServer(t)
	code, _ := get(t, srv.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Errorf("GET /debug/vars = %d", code)
	}
}
