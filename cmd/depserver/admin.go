package main

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"

	"depscope/internal/analysis"
	"depscope/internal/incident"
	"depscope/internal/telemetry"
)

// The admin mux: telemetry, debug endpoints, and the /incident what-if
// simulator. Split from the listener plumbing in main.go so tests can mount
// it on httptest servers.

// expvar.Publish panics on duplicate names, so registration must survive
// building more than one mux per process (tests do).
var publishTelemetryOnce sync.Once

// incidentBackend serves /incident. The analysis run it simulates against
// is built lazily on first request — depserver's primary job is DNS, and an
// operator who never asks a what-if question never pays for measurement.
type incidentBackend struct {
	scale int
	seed  int64

	once sync.Once
	run  *analysis.Run
	err  error
}

func (b *incidentBackend) load() (*analysis.Run, error) {
	b.once.Do(func() {
		b.run, b.err = analysis.Execute(context.Background(), analysis.Options{
			Scale: b.scale,
			Seed:  b.seed,
		})
	})
	return b.run, b.err
}

// ServeHTTP answers:
//
//	GET  /incident                 — list the built-in presets
//	GET  /incident?preset=NAME     — simulate a preset
//	POST /incident                 — simulate the scenario JSON in the body
func (b *incidentBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var sc *incident.Scenario
	switch r.Method {
	case http.MethodGet:
		name := r.URL.Query().Get("preset")
		if name == "" {
			writeJSON(w, http.StatusOK, map[string]any{"presets": incident.PresetNames()})
			return
		}
		var ok bool
		if sc, ok = incident.Preset(name); !ok {
			httpError(w, http.StatusBadRequest, "unknown preset %q (have: %s)",
				name, strings.Join(incident.PresetNames(), ", "))
			return
		}
	case http.MethodPost:
		var err error
		if sc, err = incident.ParseScenario(r.Body); err != nil {
			httpError(w, http.StatusBadRequest, "bad scenario: %v", err)
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	run, err := b.load()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "measurement run failed: %v", err)
		return
	}
	rep, err := analysis.SimulateIncident(r.Context(), run, sc)
	if err != nil {
		// The scenario parsed but does not apply to this world (unknown
		// provider, missing snapshot, ...): the request is at fault.
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// newAdminMux assembles the operator endpoint: Prometheus text at /metrics,
// expvar, pprof, and the /incident simulator.
func newAdminMux(backend *incidentBackend) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(telemetry.Default))
	publishTelemetryOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return telemetry.Default.Snapshot()
		}))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/incident", backend)
	return mux
}
