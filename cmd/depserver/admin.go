package main

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"

	"depscope/internal/serve"
	"depscope/internal/telemetry"
)

// The admin mux: telemetry, debug endpoints, and the query API (the /v1
// endpoints and the /incident what-if simulator, both served off the
// snapshot manager in internal/serve). Split from the listener plumbing in
// main.go so tests can mount it on httptest servers.

// expvar.Publish panics on duplicate names, so registration must survive
// building more than one mux per process (tests do).
var publishTelemetryOnce sync.Once

// newAdminMux assembles the operator endpoint: Prometheus text at /metrics,
// expvar, pprof, and the snapshot-backed query API.
func newAdminMux(m *serve.Manager) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(telemetry.Default))
	publishTelemetryOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return telemetry.Default.Snapshot()
		}))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	serve.Register(mux, m)
	return mux
}
