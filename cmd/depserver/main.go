// Command depserver materializes a snapshot of the synthetic Internet and
// serves its zones over real UDP+TCP DNS, so external tools (cmd/digsim,
// dig, the examples) can interrogate the same world the measurement
// pipeline analyzes.
//
// Usage:
//
//	depserver [-scale N] [-seed S] [-year 2016|2020] [-addr host:port]
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"depscope/internal/dnsserver"
	"depscope/internal/dnszone"
	"depscope/internal/ecosystem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("depserver: ")
	var (
		scale    = flag.Int("scale", 5000, "ranked-list length")
		seed     = flag.Int64("seed", 2020, "generator seed")
		year     = flag.Int("year", 2020, "snapshot year (2016 or 2020)")
		addr     = flag.String("addr", "127.0.0.1:5353", "listen address (UDP and TCP)")
		verbose  = flag.Bool("v", false, "log every query")
		zonefile = flag.String("zonefile", "", "additionally serve a zone from this RFC 1035 master file")
		export   = flag.String("export", "", "write the zone of this domain to stdout as a master file and exit")
	)
	flag.Parse()

	snap := ecosystem.Y2020
	if *year == 2016 {
		snap = ecosystem.Y2016
	} else if *year != 2020 {
		log.Fatalf("unsupported year %d", *year)
	}

	u, err := ecosystem.Generate(ecosystem.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	world := ecosystem.Materialize(u, snap)
	log.Printf("materialized %s snapshot: %d sites, %d zones",
		snap, len(world.Sites), world.Zones.ZoneCount())

	if *export != "" {
		z := world.Zones.FindZone(*export)
		if z == nil {
			log.Fatalf("no zone of authority for %q", *export)
		}
		if _, err := z.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *zonefile != "" {
		f, err := os.Open(*zonefile)
		if err != nil {
			log.Fatal(err)
		}
		z, err := dnszone.ParseZone(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		world.Zones.AddZone(z)
		log.Printf("loaded extra zone %s from %s", z.Origin, *zonefile)
	}

	cfg := dnsserver.Config{Addr: *addr}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := dnsserver.New(world.Zones, cfg)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		log.Fatal(err)
	}
	log.Printf("served %d queries", srv.Queries())
}
