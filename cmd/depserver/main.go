// Command depserver materializes a snapshot of the synthetic Internet and
// serves its zones over real UDP+TCP DNS, so external tools (cmd/digsim,
// dig, the examples) can interrogate the same world the measurement
// pipeline analyzes.
//
// With -http it additionally serves an operator endpoint: the snapshot-
// backed query API (/v1/sites, /v1/providers, /v1/snapshot, /v1/sweep,
// /v1/mitigation, /incident — see docs/serving.md), the process-wide
// telemetry registry as Prometheus text (/metrics), expvar (/debug/vars)
// and the standard pprof profiles (/debug/pprof/). See docs/observability.md.
//
// Usage:
//
//	depserver [-scale N] [-seed S] [-year 2016|2020] [-addr host:port] [-http host:port] [-prewarm] [-allow-delta]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"depscope/internal/analysis"
	"depscope/internal/chain"
	"depscope/internal/dnsserver"
	"depscope/internal/dnszone"
	"depscope/internal/ecosystem"
	"depscope/internal/membudget"
	"depscope/internal/serve"

	// Blank imports register the metrics of layers depserver does not call
	// directly, so a scrape of /metrics shows the full catalog (zero-valued
	// until the corresponding code runs in this process). analysis and
	// incident are imported for real by admin.go.
	_ "depscope/internal/conc"
	_ "depscope/internal/measure"
	_ "depscope/internal/resolver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("depserver: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run holds the whole server lifecycle so every exit path unwinds through
// ordinary returns: once listeners are up, errors propagate back here
// instead of calling log.Fatal mid-flight (which would skip the deferred
// cleanup and leave the HTTP listener dangling on a DNS failure or vice
// versa).
func run() error {
	var (
		scale        = flag.Int("scale", 5000, "ranked-list length")
		seed         = flag.Int64("seed", 2020, "generator seed")
		year         = flag.Int("year", 2020, "snapshot year (2016 or 2020)")
		addr         = flag.String("addr", "127.0.0.1:5353", "listen address (UDP and TCP)")
		httpAddr     = flag.String("http", "", "serve the query API, /metrics, /debug/vars and /debug/pprof on this address")
		prewarm      = flag.Bool("prewarm", false, "build the analysis snapshot at startup (in the background) instead of on the first query")
		delta        = flag.Bool("allow-delta", false, "enable the mutating POST /v1/delta endpoint (incremental snapshot edits; see docs/incremental.md)")
		verbose      = flag.Bool("v", false, "log every query")
		zonefile     = flag.String("zonefile", "", "additionally serve a zone from this RFC 1035 master file")
		export       = flag.String("export", "", "write the zone of this domain to stdout as a master file and exit")
		chainsOn     = flag.Bool("chains", false, "measure transitive resource-inclusion chains in the analysis snapshot and serve GET /v1/chains (see docs/chains.md)")
		compact      = flag.Bool("compact", false, "build analysis snapshots with the streaming/columnar engine; provider rankings are served straight off the columnar graph (see docs/scale.md)")
		memBudgetStr = flag.String("mem-budget", "", "soft live-heap limit for snapshot builds, e.g. 8GiB (implies -compact; see docs/scale.md)")
	)
	flag.Parse()

	var memBudget uint64
	if *memBudgetStr != "" {
		b, err := membudget.Parse(*memBudgetStr)
		if err != nil {
			return err
		}
		memBudget = b
		*compact = true
	}

	snap := ecosystem.Y2020
	if *year == 2016 {
		snap = ecosystem.Y2016
	} else if *year != 2020 {
		return fmt.Errorf("unsupported year %d", *year)
	}

	u, err := ecosystem.Generate(ecosystem.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	world := ecosystem.Materialize(u, snap)
	log.Printf("materialized %s snapshot: %d sites, %d zones",
		snap, len(world.Sites), world.Zones.ZoneCount())

	if *export != "" {
		z := world.Zones.FindZone(*export)
		if z == nil {
			return fmt.Errorf("no zone of authority for %q", *export)
		}
		_, err := z.WriteTo(os.Stdout)
		return err
	}
	if *zonefile != "" {
		f, err := os.Open(*zonefile)
		if err != nil {
			return err
		}
		z, err := dnszone.ParseZone(f)
		f.Close()
		if err != nil {
			return err
		}
		world.Zones.AddZone(z)
		log.Printf("loaded extra zone %s from %s", z.Origin, *zonefile)
	}

	cfg := dnsserver.Config{Addr: *addr}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := dnsserver.New(world.Zones, cfg)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Bring the admin endpoint up before blocking on the DNS server, but
	// tie both to the same signal context: whichever fails first cancels
	// the other, and SIGTERM shuts both down cleanly. The channel holds one
	// slot per sender (admin + DNS) so whichever loses the select race below
	// still completes its send and exits instead of blocking forever.
	errc := make(chan error, 2)
	if *httpAddr != "" {
		// The query API serves immutable analysis snapshots built by this
		// manager. Builds run under the signal context, so SIGTERM cancels a
		// measurement in flight; a failed build is retried with backoff on
		// the next request, never cached.
		opts := []serve.Option{serve.WithSeed(*seed)}
		if *delta {
			opts = append(opts, serve.WithDeltaAPI())
		}
		var chainCfg *chain.Config
		if *chainsOn {
			cfg := chain.Default()
			chainCfg = &cfg
		}
		mgr := serve.NewManager(ctx, func(bctx context.Context) (*analysis.Run, error) {
			return analysis.Execute(bctx, analysis.Options{
				Scale: *scale, Seed: *seed, Chains: chainCfg,
				Compact: *compact, MemBudget: memBudget,
			})
		}, opts...)
		if *prewarm {
			mgr.Prewarm()
		}
		hs, err := startAdmin(*httpAddr, mgr, errc)
		if err != nil {
			return err
		}
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := hs.Shutdown(shutCtx); err != nil {
				log.Printf("admin shutdown: %v", err)
			}
		}()
	}

	go func() { errc <- srv.Run(ctx) }()
	select {
	case err := <-errc:
		stop() // a listener died; unwind the other one
		return err
	case <-ctx.Done():
		err := <-errc // srv.Run closes on ctx cancellation
		log.Printf("served %d queries", srv.Queries())
		return err
	}
}

// startAdmin binds httpAddr and serves the admin mux (see newAdminMux in
// admin.go). Listener errors after startup are reported on errc.
func startAdmin(httpAddr string, mgr *serve.Manager, errc chan<- error) (*http.Server, error) {
	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return nil, fmt.Errorf("admin listen %s: %w", httpAddr, err)
	}
	hs := &http.Server{Handler: newAdminMux(mgr)}
	log.Printf("admin endpoint on http://%s/metrics (also /v1/sites, /v1/providers, /v1/snapshot, /v1/delta, /v1/diff, /incident, /debug/vars, /debug/pprof)", ln.Addr())
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- fmt.Errorf("admin serve: %w", err)
		}
	}()
	return hs, nil
}
