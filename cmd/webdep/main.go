// Command webdep audits the DNS dependencies of an arbitrary ranked site
// list against any DNS server, speaking the real wire protocol — the
// reusable half of the paper's methodology, pointed at whatever authority
// you give it (a production recursive resolver, or cmd/depserver for a
// simulated world).
//
// Usage:
//
//	webdep -server 127.0.0.1:5353 -sites list.csv
//	webdep -server 127.0.0.1:5353 example.com other.org
//
// The site list uses the Alexa CSV format ("rank,domain") or bare domains.
// Output reports each site's dependency class and the aggregated provider
// concentration.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"depscope/internal/alexa"
	"depscope/internal/conc"
	"depscope/internal/core"
	"depscope/internal/measure"
	"depscope/internal/resolver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webdep: ")
	var (
		server    = flag.String("server", "127.0.0.1:5353", "DNS server to query (UDP with TCP fallback)")
		sitesFile = flag.String("sites", "", "ranked site list (Alexa CSV or bare domains); site args otherwise")
		threshold = flag.Int("threshold", 50, "concentration threshold for the SOA-equal rule")
		workers   = flag.Int("workers", 16, "concurrent lookups")
		timeout   = flag.Duration("timeout", 60*time.Second, "overall deadline")
		topN      = flag.Int("top", 10, "providers to list in the summary")
	)
	flag.Parse()

	var list alexa.List
	switch {
	case *sitesFile != "":
		f, err := os.Open(*sitesFile)
		if err != nil {
			log.Fatal(err)
		}
		list, err = alexa.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case flag.NArg() > 0:
		list = alexa.FromDomains(flag.Args())
	default:
		log.Fatal("no sites: pass -sites <file> or domains as arguments")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := audit(ctx, os.Stdout, *server, list, *threshold, *workers, *topN); err != nil {
		log.Fatal(err)
	}
}

// audit runs the DNS-only measurement over the wire and writes the report.
func audit(ctx context.Context, w io.Writer, server string, list alexa.List, threshold, workers, topN int) error {
	r := resolver.New(resolver.NewUDPTransport(server))
	// Live measurements hit plenty of dead domains: collect errors instead
	// of failing the audit on the first one.
	res, err := measure.Run(ctx, list.Domains(), measure.Config{
		Resolver:               r,
		ConcentrationThreshold: threshold,
		Workers:                workers,
		ErrorPolicy:            conc.Collect,
	})
	if err != nil {
		return err
	}

	var private, critical, redundant, unknown int
	usage := make(map[string]int)
	for i := range res.Sites {
		sr := &res.Sites[i]
		switch {
		case sr.DNS.Class == core.ClassUnknown:
			unknown++
		case sr.DNS.Class == core.ClassPrivate:
			private++
		case sr.DNS.Class.Critical():
			critical++
		default:
			redundant++
		}
		for _, p := range sr.DNS.Providers {
			usage[p]++
		}
		fmt.Fprintf(w, "%-40s %-14s %v\n", sr.Site, sr.DNS.Class, sr.DNS.Providers)
	}

	n := len(res.Sites)
	fmt.Fprintf(w, "\n%d sites via %s: %d private, %d critical, %d redundant, %d uncharacterized\n",
		n, server, private, critical, redundant, unknown)

	type pc struct {
		name string
		n    int
	}
	var tops []pc
	for p, c := range usage {
		tops = append(tops, pc{p, c})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].n != tops[j].n {
			return tops[i].n > tops[j].n
		}
		return tops[i].name < tops[j].name
	})
	if len(tops) > topN {
		tops = tops[:topN]
	}
	if len(tops) > 0 {
		fmt.Fprintln(w, "top third-party DNS providers:")
		for _, t := range tops {
			fmt.Fprintf(w, "  %-30s %d sites\n", t.name, t.n)
		}
	}
	stats := res.Diagnostics.Resolver
	fmt.Fprintf(w, "resolver: %d lookups, %d cache hits (%.1f%%)\n",
		stats.Queries, stats.Hits, 100*stats.HitRate())
	if errs := res.Diagnostics.TotalErrors(); errs > 0 {
		fmt.Fprintf(w, "measurement errors: %d (sites kept as uncharacterized)\n", errs)
	}
	return nil
}
