package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"depscope/internal/alexa"
	"depscope/internal/dnsserver"
	"depscope/internal/ecosystem"
)

// TestAuditAgainstLiveServer runs the real-wire audit against a depserver
// world: an end-to-end integration of list parsing, UDP transport, the
// measurement pipeline and report rendering.
func TestAuditAgainstLiveServer(t *testing.T) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	world := ecosystem.Materialize(u, ecosystem.Y2020)
	srv := dnsserver.New(world.Zones, dnsserver.Config{})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	list := alexa.FromDomains(world.Sites[:40])
	// Include a domain outside all authority: the Collect error policy must
	// keep the run alive and report it as unknown.
	list = append(list, alexa.Entry{Rank: 41, Domain: "not-in-this-world.example"})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var sb strings.Builder
	if err := audit(ctx, &sb, addr, list, 3, 8, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "41 sites via") {
		t.Errorf("summary missing:\n%s", out)
	}
	if !strings.Contains(out, "uncharacterized") {
		t.Errorf("unknown site not reported:\n%s", out)
	}
	if !strings.Contains(out, "top third-party DNS providers:") {
		t.Errorf("provider summary missing:\n%s", out)
	}
	if !strings.Contains(out, "not-in-this-world.example") {
		t.Errorf("dead domain missing from per-site lines:\n%s", out)
	}
	if srv.Queries() == 0 {
		t.Error("no queries hit the wire")
	}
}
