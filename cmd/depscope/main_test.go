package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadScenario(t *testing.T) {
	// Presets resolve by name.
	sc, err := loadScenario("dyn-replay")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Snapshot != "2016" {
		t.Errorf("dyn-replay snapshot = %q, want 2016", sc.Snapshot)
	}

	// A scenario file on disk wins over preset lookup.
	dir := t.TempDir()
	path := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(path, []byte(`{"name":"f","targets":{"providers":["x.com"]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err = loadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "f" {
		t.Errorf("file scenario name = %q, want f", sc.Name)
	}

	// A broken file reports its path, not a preset complaint.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"b","bogus_field":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadScenario(bad); err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("bad file error = %v, want mention of %s", err, bad)
	}

	// Neither file nor preset: the error lists what IS available.
	if _, err := loadScenario("no-such-thing"); err == nil || !strings.Contains(err.Error(), "dyn-replay") {
		t.Errorf("unknown scenario error = %v, want preset listing", err)
	}
}

// rerun executes this test binary as the depscope process (via the helper
// test below) with the given depscope arguments, returning combined output
// and whether it exited non-zero.
func rerun(t *testing.T, args ...string) (string, bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperProcess")
	cmd.Env = append(os.Environ(), "DEPSCOPE_HELPER_ARGS="+strings.Join(args, "\x1f"))
	out, err := cmd.CombinedOutput()
	if err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("rerun: %v\n%s", err, out)
		}
		return string(out), true
	}
	return string(out), false
}

// TestHelperProcess is not a real test: rerun launches it to drive main()
// in a subprocess so log.Fatal exit codes can be observed.
func TestHelperProcess(t *testing.T) {
	raw := os.Getenv("DEPSCOPE_HELPER_ARGS")
	if raw == "" {
		t.Skip("helper process only")
	}
	os.Args = append([]string{"depscope"}, strings.Split(raw, "\x1f")...)
	main()
	os.Exit(0)
}

func TestBadFlagsExitNonZero(t *testing.T) {
	out, failed := rerun(t, "-error-policy", "bogus")
	if !failed {
		t.Fatalf("-error-policy bogus exited zero:\n%s", out)
	}
	if !strings.Contains(out, "unknown error policy") || !strings.Contains(out, "failfast or collect") {
		t.Errorf("-error-policy bogus output missing guidance:\n%s", out)
	}

	out, failed = rerun(t, "-incident", "no-such-preset")
	if !failed {
		t.Fatalf("-incident no-such-preset exited zero:\n%s", out)
	}
	if !strings.Contains(out, "unknown incident scenario") || !strings.Contains(out, "dyn-replay") {
		t.Errorf("-incident output missing preset listing:\n%s", out)
	}
}
