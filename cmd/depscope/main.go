// Command depscope runs the full reproduction: it generates the synthetic
// Internet for both snapshots (2016, 2020), executes the measurement
// pipeline of the paper's §3 against it, and prints every table and figure
// of the evaluation.
//
// Usage:
//
//	depscope [-scale N] [-seed S] [-workers W] [-experiment name] [-incident scenario]
//	         [-sweep spec] [-mitigate K] [-checkpoint file [-resume]] [-timeline stream.json]
//
// With -experiment, only the named table/figure is printed (e.g. "table3",
// "figure5", "figure7"). With -incident, a what-if outage scenario (a JSON
// file or a preset such as "dyn-replay") is simulated and its impact report
// printed instead. With -sweep, a Monte-Carlo sweep spec (a JSON file or a
// preset such as "mc-baseline") samples thousands of randomized failure
// scenarios and prints the damage distribution; with -mitigate K, the greedy
// optimizer prints the K sites that should add a second provider to shrink
// aggregate impact the most (see docs/risk.md). With -checkpoint,
// measurement progress is saved as the run advances (one file per snapshot)
// and -resume picks a prior run back up from those files instead of
// restarting. With -timeline, a delta stream is replayed against the
// measured run and its evolution table printed (see docs/incremental.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"depscope/internal/analysis"
	"depscope/internal/casestudy"
	"depscope/internal/chain"
	"depscope/internal/conc"
	"depscope/internal/incident"
	"depscope/internal/membudget"
	"depscope/internal/telemetry"
)

// loadSweep resolves the -sweep argument: a path to a sweep-spec JSON file,
// or the name of a built-in Monte-Carlo preset.
func loadSweep(arg string) (*incident.SweepSpec, error) {
	if _, err := os.Stat(arg); err == nil {
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sp, err := incident.ParseSweep(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		return sp, nil
	}
	if sp, ok := incident.SweepPreset(arg); ok {
		return sp, nil
	}
	return nil, fmt.Errorf("unknown sweep spec %q: not a file, and not a preset (%s)",
		arg, strings.Join(incident.SweepPresetNames(), ", "))
}

// loadScenario resolves the -incident argument: a path to a scenario JSON
// file, or the name of a built-in preset.
func loadScenario(arg string) (*incident.Scenario, error) {
	if _, err := os.Stat(arg); err == nil {
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sc, err := incident.ParseScenario(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		return sc, nil
	}
	if sc, ok := incident.Preset(arg); ok {
		return sc, nil
	}
	return nil, fmt.Errorf("unknown incident scenario %q: not a file, and not a preset (%s)",
		arg, strings.Join(incident.PresetNames(), ", "))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("depscope: ")
	var (
		scale      = flag.Int("scale", 100000, "ranked-list length (the paper uses 100000)")
		seed       = flag.Int64("seed", 2020, "generator seed")
		workers    = flag.Int("workers", 0, "measurement and metrics concurrency (values < 1 mean GOMAXPROCS)")
		experiment = flag.String("experiment", "", "print only one experiment (table1..table11, figure2..figure9, hidden, criticaldeps, robustness, chains)")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		outage     = flag.String("outage", "", "what-if analysis: provider identity to fail (e.g. dnsmadeeasy.com, Akamai)")
		dotFile    = flag.String("dot", "", "write the 2020 dependency graph in Graphviz format to this file")
		asJSON     = flag.Bool("json", false, "emit the experiment summary as JSON instead of text")
		csvFigure  = flag.String("csv", "", "emit one figure's data series as CSV (figure2..figure4, figure6-dns/cdn/ca, figure7..figure9)")
		incidentIn = flag.String("incident", "", "what-if incident simulation: a scenario JSON file or a preset name (see docs/incidents.md)")
		policyStr  = flag.String("error-policy", "failfast", "per-site error policy: failfast aborts on the first measurement error, collect marks the site uncharacterized and reports errors in the summary footer")
		showTelem  = flag.Bool("telemetry", false, "print the end-of-run telemetry metrics table to stderr")
		ckptPath   = flag.String("checkpoint", "", "checkpoint measurement progress to this path (one file per snapshot: <path>.2016, <path>.2020)")
		resume     = flag.Bool("resume", false, "resume from the -checkpoint files of an earlier run (they must exist); only sites whose content changed are re-measured")
		timelineIn = flag.String("timeline", "", "replay a delta-stream JSON file against the measured run and print the evolution table (see docs/incremental.md)")
		sweepIn    = flag.String("sweep", "", "Monte-Carlo incident sweep: a sweep-spec JSON file or a preset name (see docs/risk.md)")
		mitigateK  = flag.Int("mitigate", 0, "print a greedy mitigation plan: the K sites that should add a second provider to shrink aggregate impact the most (see docs/risk.md)")
		chainsOn   = flag.Bool("chains", false, "measure transitive resource-inclusion chains: implicitly-trusted script/font vendors become a fourth dependency type (see docs/chains.md)")
		chainsCfg  = flag.String("chain-config", "", "chain configuration JSON file overriding the -chains defaults (implies -chains; see docs/chains.md)")
		compactOn  = flag.Bool("compact", false, "use the streaming/columnar engine: sites are materialized and measured in batches with landing pages released as the run advances, and the graph is stored columnar; output is identical (see docs/scale.md)")
		memBudget  = flag.String("mem-budget", "", "soft live-heap limit for the run, e.g. 8GiB (implies -compact; checked at batch boundaries, over-budget runs fail fast; see docs/scale.md)")
		batchSize  = flag.Int("batch-size", 0, "streaming batch length in sites for -compact runs (values < 1 mean 8192)")
	)
	flag.Parse()
	if *showTelem {
		// Written to stderr on every normal exit path so -json/-csv output
		// stays machine-parseable. Error paths exit via log.Fatal and skip it.
		defer func() {
			fmt.Fprintln(os.Stderr, "\ntelemetry (process-wide, end of run):")
			telemetry.Default.Snapshot().WriteTable(os.Stderr)
		}()
	}
	policy, err := conc.ParsePolicy(*policyStr)
	if err != nil {
		log.Fatal(err)
	}
	// Resolve the scenario before the expensive measurement run so a typo in
	// a preset name or scenario file fails in milliseconds, not minutes.
	var scenario *incident.Scenario
	if *incidentIn != "" {
		scenario, err = loadScenario(*incidentIn)
		if err != nil {
			log.Fatal(err)
		}
	}
	var sweep *incident.SweepSpec
	if *sweepIn != "" {
		sweep, err = loadSweep(*sweepIn)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *mitigateK < 0 {
		log.Fatal("-mitigate must be positive")
	}
	var chainCfg *chain.Config
	if *chainsCfg != "" {
		f, err := os.Open(*chainsCfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := chain.ParseConfig(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", *chainsCfg, err)
		}
		chainCfg = &cfg
	} else if *chainsOn {
		cfg := chain.Default()
		chainCfg = &cfg
	}
	// Same fail-fast treatment for the other pre-run inputs: a bad delta
	// stream or a -resume without its checkpoint should not cost a run.
	if *resume && *ckptPath == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	var budget uint64
	if *memBudget != "" {
		budget, err = membudget.Parse(*memBudget)
		if err != nil {
			log.Fatal(err)
		}
		*compactOn = true
	}
	if *compactOn && *ckptPath != "" {
		log.Fatal("-compact/-mem-budget runs do not support -checkpoint")
	}
	var stream *analysis.DeltaStream
	if *timelineIn != "" {
		f, err := os.Open(*timelineIn)
		if err != nil {
			log.Fatal(err)
		}
		stream, err = analysis.ParseDeltaStream(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", *timelineIn, err)
		}
	}

	renderers := map[string]func(*analysis.Run){
		"table1":       func(r *analysis.Run) { analysis.RenderTable1(os.Stdout, r) },
		"table2":       func(r *analysis.Run) { analysis.RenderTable2(os.Stdout, r) },
		"table3":       func(r *analysis.Run) { analysis.RenderTable3(os.Stdout, r) },
		"table4":       func(r *analysis.Run) { analysis.RenderTable4(os.Stdout, r) },
		"table5":       func(r *analysis.Run) { analysis.RenderTable5(os.Stdout, r) },
		"table6":       func(r *analysis.Run) { analysis.RenderTable6(os.Stdout, r) },
		"table7":       func(r *analysis.Run) { analysis.RenderTable7(os.Stdout, r) },
		"table8":       func(r *analysis.Run) { analysis.RenderTable8(os.Stdout, r) },
		"table9":       func(r *analysis.Run) { analysis.RenderTable9(os.Stdout, r) },
		"figure2":      func(r *analysis.Run) { analysis.RenderFigure2(os.Stdout, r) },
		"figure3":      func(r *analysis.Run) { analysis.RenderFigure3(os.Stdout, r) },
		"figure4":      func(r *analysis.Run) { analysis.RenderFigure4(os.Stdout, r) },
		"figure5":      func(r *analysis.Run) { analysis.RenderFigure5(os.Stdout, r) },
		"figure6":      func(r *analysis.Run) { analysis.RenderFigure6(os.Stdout, r) },
		"figure7":      func(r *analysis.Run) { analysis.RenderFigure7(os.Stdout, r) },
		"figure8":      func(r *analysis.Run) { analysis.RenderFigure8(os.Stdout, r) },
		"figure9":      func(r *analysis.Run) { analysis.RenderFigure9(os.Stdout, r) },
		"hidden":       func(r *analysis.Run) { analysis.RenderHiddenDeps(os.Stdout, r) },
		"criticaldeps": func(r *analysis.Run) { analysis.RenderCriticalDeps(os.Stdout, r) },
		"chains":       func(r *analysis.Run) { analysis.RenderChains(os.Stdout, r) },
		"table10":      func(*analysis.Run) { renderHospitals(*seed) },
		"table11":      func(*analysis.Run) { renderSmartHome() },
		"robustness":   func(r *analysis.Run) { analysis.RenderRobustness(os.Stdout, r) },
		"validation": func(r *analysis.Run) {
			if err := analysis.RenderValidation(os.Stdout, r); err != nil {
				log.Fatal(err)
			}
		},
		"ablation": func(r *analysis.Run) {
			if err := analysis.RenderAblation(os.Stdout, r); err != nil {
				log.Fatal(err)
			}
		},
	}
	name := strings.ToLower(*experiment)
	if name != "" {
		if _, ok := renderers[name]; !ok {
			var known []string
			for k := range renderers {
				known = append(known, k)
			}
			sort.Strings(known)
			log.Fatalf("unknown experiment %q; available: %s", name, strings.Join(known, ", "))
		}
	}

	// The case studies do not need the main-universe run.
	if name == "table10" {
		renderHospitals(*seed)
		return
	}
	if name == "table11" {
		renderSmartHome()
		return
	}

	start := time.Now()
	if !*quiet {
		log.Printf("generating and measuring %d sites x 2 snapshots (seed %d)", *scale, *seed)
	}
	progress := func(format string, args ...any) {
		if !*quiet {
			log.Printf(format, args...)
		}
	}
	run, err := analysis.Execute(context.Background(), analysis.Options{
		Scale:          *scale,
		Seed:           *seed,
		Workers:        *workers,
		ErrorPolicy:    policy,
		Progress:       progress,
		CheckpointPath: *ckptPath,
		Resume:         *resume,
		Chains:         chainCfg,
		Compact:        *compactOn,
		MemBudget:      budget,
		BatchSize:      *batchSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		log.Printf("measurement complete in %v", time.Since(start).Round(time.Millisecond))
	}
	// Under collect, always account for what was tolerated; under failfast a
	// completed run is error-free by construction, so stay quiet.
	errorFooter := func() {
		if policy == conc.Collect {
			analysis.RenderErrorSummary(os.Stdout, run)
		}
	}

	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := analysis.WriteDOT(f, run, 200); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote dependency graph to %s", *dotFile)
	}
	if stream != nil {
		rows, err := analysis.Timeline(run, stream)
		if err != nil {
			log.Fatal(err)
		}
		analysis.RenderTimeline(os.Stdout, rows)
		errorFooter()
		return
	}
	if *outage != "" {
		analysis.RenderOutage(os.Stdout, run, *outage)
		errorFooter()
		return
	}
	if scenario != nil {
		rep, err := analysis.SimulateIncident(context.Background(), run, scenario)
		if err != nil {
			log.Fatal(err)
		}
		rep.WriteText(os.Stdout)
		errorFooter()
		return
	}
	if sweep != nil {
		rep, err := analysis.MonteCarloSweep(context.Background(), run, sweep, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
		} else {
			rep.WriteText(os.Stdout)
		}
		errorFooter()
		return
	}
	if *mitigateK > 0 {
		plan, err := analysis.Mitigation(run, *mitigateK, "")
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(plan); err != nil {
				log.Fatal(err)
			}
		} else {
			analysis.WriteMitigationText(os.Stdout, plan)
		}
		errorFooter()
		return
	}
	if *csvFigure != "" {
		if err := analysis.WriteFigureCSV(os.Stdout, run, *csvFigure); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *asJSON {
		if err := analysis.WriteJSON(os.Stdout, run); err != nil {
			log.Fatal(err)
		}
		return
	}
	if name != "" {
		renderers[name](run)
		errorFooter()
		return
	}
	fmt.Printf("depscope: third-party dependency analysis (scale %d, seed %d)\n", *scale, *seed)
	analysis.Report(os.Stdout, run)
	if err := analysis.RenderValidation(os.Stdout, run); err != nil {
		log.Fatal(err)
	}
	errorFooter()
	fmt.Println()
	renderHospitals(*seed)
	fmt.Println()
	renderSmartHome()
}

func renderHospitals(seed int64) {
	rep, err := casestudy.Hospitals(context.Background(), seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
}

func renderSmartHome() {
	rep, err := casestudy.SmartHome(context.Background(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
}
