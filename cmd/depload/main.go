// Command depload is the built-in load generator for depserver's query API:
// it drives a running server across a configurable endpoint mix and reports
// measured throughput and latency quantiles per endpoint, in the same JSON
// record shape as docs/bench.sh (so BENCH_serve.json slots into the
// bench-compare trajectory).
//
// Usage:
//
//	depserver -scale 2000 -http 127.0.0.1:8080 -prewarm &
//	depload -addr http://127.0.0.1:8080 -duration 5s -concurrency 32
//
// depload first polls /v1/snapshot until the server reports a published
// snapshot (triggering the build itself if the server was not prewarmed),
// fetches a working set of site names, then runs the timed phase: every
// worker loops over the weighted endpoint mix with keep-alive connections,
// recording one latency sample per request. Results go to stdout as one
// JSON object per endpoint plus a Total record; the human summary goes to
// stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// endpoint names in mix order; "site" hits /v1/sites/{name}.
var endpointNames = []string{"site", "providers", "snapshot", "sites", "incident"}

type mix map[string]int

// parseMix parses "site=60,providers=25,snapshot=10,incident=5".
func parseMix(s string) (mix, error) {
	m := make(mix)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		known := false
		for _, n := range endpointNames {
			if n == k {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown endpoint %q in mix (have: %s)", k, strings.Join(endpointNames, ", "))
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight %q for %s", v, k)
		}
		m[k] = w
	}
	total := 0
	for _, w := range m {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix selects nothing")
	}
	return m, nil
}

// table expands the mix into a shuffled pick table so consecutive requests
// interleave endpoints instead of running them in blocks.
func (m mix) table(rng *rand.Rand) []string {
	var t []string
	for _, name := range endpointNames {
		for i := 0; i < m[name]; i++ {
			t = append(t, name)
		}
	}
	rng.Shuffle(len(t), func(i, j int) { t[i], t[j] = t[j], t[i] })
	return t
}

// sample is one endpoint's collected measurements on one worker.
type sample struct {
	latencies []int64 // ns
	errors    int
}

type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"` // p50 latency
	P99Ns       int64   `json:"p99_ns"`
	QPS         float64 `json:"qps"`
	Errors      int     `json:"errors"`
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("depload: ")
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "base URL of the depserver admin endpoint")
		duration    = flag.Duration("duration", 10*time.Second, "timed phase length")
		concurrency = flag.Int("concurrency", 0, "concurrent workers; values < 1 mean 4 x GOMAXPROCS")
		mixSpec     = flag.String("mix", "site=60,providers=25,snapshot=10,incident=5", "weighted endpoint mix")
		sitesN      = flag.Int("sites", 500, "size of the site-name working set fetched up front")
		readyWait   = flag.Duration("ready-timeout", 120*time.Second, "how long to wait for the server's snapshot build")
		failOnError = flag.Bool("fail-on-error", false, "exit non-zero when any request fails")
		seed        = flag.Int64("rng-seed", 1, "endpoint-mix shuffle seed")
	)
	flag.Parse()
	if *concurrency < 1 {
		*concurrency = 4 * maxParallelism()
	}
	m, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	base := strings.TrimSuffix(*addr, "/")

	transport := &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	if err := waitReady(client, base, *readyWait); err != nil {
		log.Fatal(err)
	}
	sites, err := fetchSites(client, base, *sitesN)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("server ready; working set of %d sites, %d workers, mix %s, %s timed run",
		len(sites), *concurrency, *mixSpec, *duration)

	// The timed phase. Each worker owns its RNG, pick table and sample set;
	// nothing is shared but the (concurrency-safe) client.
	deadline := time.Now().Add(*duration)
	results := make([]map[string]*sample, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			table := m.table(rng)
			samples := make(map[string]*sample, len(endpointNames))
			for _, n := range endpointNames {
				samples[n] = &sample{}
			}
			results[w] = samples
			for i := 0; time.Now().Before(deadline); i++ {
				name := table[i%len(table)]
				url := requestURL(base, name, sites, rng)
				t0 := time.Now()
				ok := doRequest(client, url)
				el := time.Since(t0).Nanoseconds()
				s := samples[name]
				s.latencies = append(s.latencies, el)
				if !ok {
					s.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge workers and emit one record per exercised endpoint plus Total.
	var all []int64
	totalErrs := 0
	enc := json.NewEncoder(os.Stdout)
	for _, name := range endpointNames {
		var lat []int64
		errs := 0
		for _, samples := range results {
			s := samples[name]
			lat = append(lat, s.latencies...)
			errs += s.errors
		}
		if len(lat) == 0 {
			continue
		}
		all = append(all, lat...)
		totalErrs += errs
		rec := summarize("LoadServe"+title(name), lat, errs, elapsed, *concurrency)
		log.Printf("%-22s %9d req  %8.0f qps  p50 %8s  p99 %8s  errors %d",
			rec.Name, rec.Iterations, rec.QPS,
			time.Duration(rec.NsPerOp), time.Duration(rec.P99Ns), rec.Errors)
		enc.Encode(rec)
	}
	rec := summarize("LoadServeTotal", all, totalErrs, elapsed, *concurrency)
	log.Printf("%-22s %9d req  %8.0f qps  p50 %8s  p99 %8s  errors %d",
		rec.Name, rec.Iterations, rec.QPS,
		time.Duration(rec.NsPerOp), time.Duration(rec.P99Ns), rec.Errors)
	enc.Encode(rec)

	if *failOnError && totalErrs > 0 {
		log.Fatalf("%d requests failed", totalErrs)
	}
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func maxParallelism() int {
	return runtime.GOMAXPROCS(0)
}

func summarize(name string, lat []int64, errs int, elapsed time.Duration, conc int) record {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) int64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return record{
		Name:        name,
		Iterations:  len(lat),
		NsPerOp:     q(0.50),
		P99Ns:       q(0.99),
		QPS:         float64(len(lat)) / elapsed.Seconds(),
		Errors:      errs,
		Concurrency: conc,
		DurationS:   elapsed.Seconds(),
	}
}

// requestURL picks the concrete URL for one request of the named kind.
func requestURL(base, name string, sites []string, rng *rand.Rand) string {
	switch name {
	case "site":
		return base + "/v1/sites/" + sites[rng.Intn(len(sites))]
	case "providers":
		metric := "cp"
		if rng.Intn(2) == 1 {
			metric = "ip"
		}
		return base + "/v1/providers?metric=" + metric + "&top=10"
	case "snapshot":
		return base + "/v1/snapshot"
	case "sites":
		return base + "/v1/sites?limit=100"
	case "incident":
		return base + "/incident?preset=dyn-replay"
	}
	panic("unknown endpoint " + name)
}

// doRequest performs one GET, draining the body so the connection is reused.
func doRequest(client *http.Client, url string) bool {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// waitReady polls /v1/snapshot until the server reports a published
// snapshot. A server without -prewarm builds on first query, so the first
// poll also fires one cheap ranking query to kick the build off.
func waitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	kicked := false
	for {
		resp, err := client.Get(base + "/v1/snapshot")
		if err == nil {
			var meta struct {
				Ready    bool   `json:"ready"`
				Building bool   `json:"building"`
				LastErr  string `json:"last_error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&meta)
			resp.Body.Close()
			if err == nil {
				if meta.Ready {
					return nil
				}
				if !meta.Building && !kicked {
					// Lazy server: fire one query to start the build, in the
					// background so we keep polling readiness.
					kicked = true
					go doRequest(client, base+"/v1/providers?top=1")
				}
				if meta.LastErr != "" {
					log.Printf("snapshot build failing (will retry): %s", meta.LastErr)
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s", base, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetchSites pulls the working set of site names, paging /v1/sites.
func fetchSites(client *http.Client, base string, n int) ([]string, error) {
	var sites []string
	for len(sites) < n {
		limit := n - len(sites)
		if limit > 10000 {
			limit = 10000
		}
		url := fmt.Sprintf("%s/v1/sites?offset=%d&limit=%d", base, len(sites), limit)
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		var page struct {
			Total int      `json:"total"`
			Sites []string `json:"sites"`
		}
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(page.Sites) == 0 {
			break
		}
		sites = append(sites, page.Sites...)
		if len(sites) >= page.Total {
			break
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("server returned no sites")
	}
	return sites, nil
}
