GO ?= go

.PHONY: all build test vet race verify bench bench-pipeline

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: compile, static checks, the plain
# suite, and the race-enabled suite (which covers the pipeline cancellation
# and pool-shutdown tests).
verify: build vet test race

# bench runs the headline metric benchmarks (Figure 5/6 renders plus the
# batched C_p/I_p engine microbenchmarks) and writes BENCH_metrics.json,
# then the staged measurement pipeline benchmark into BENCH_pipeline.json.
bench:
	./docs/bench.sh

# bench-pipeline runs only the scale-10K measurement pipeline benchmark.
bench-pipeline:
	./docs/bench.sh pipeline
