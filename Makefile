GO ?= go

.PHONY: all build test race bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/analysis/ ./internal/core/ ./internal/measure/

# bench runs the headline metric benchmarks (Figure 5/6 renders plus the
# batched C_p/I_p engine microbenchmarks) and writes BENCH_metrics.json.
bench:
	./docs/bench.sh
