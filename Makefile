GO ?= go

.PHONY: all build test vet fmt examples race verify bench bench-pipeline

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) when any tracked Go file is not
# gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# examples compiles every standalone example program.
examples:
	$(GO) build ./examples/...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: compile, static checks, formatting,
# the plain suite, the race-enabled suite (which covers the pipeline
# cancellation and pool-shutdown tests), and the example builds.
verify: build vet fmt test race examples

# bench runs the headline metric benchmarks (Figure 5/6 renders plus the
# batched C_p/I_p engine microbenchmarks) and writes BENCH_metrics.json,
# then the staged measurement pipeline benchmark into BENCH_pipeline.json.
bench:
	./docs/bench.sh

# bench-pipeline runs only the scale-10K measurement pipeline benchmark.
bench-pipeline:
	./docs/bench.sh pipeline
