GO ?= go

.PHONY: all build test vet fmt examples race golden verify bench bench-pipeline bench-incident

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) when any tracked Go file is not
# gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# examples compiles every standalone example program.
examples:
	$(GO) build ./examples/...

race:
	$(GO) test -race ./...

# golden re-runs the Dyn-replay pinning test on its own (-count=1 bypasses
# the test cache) so an intentional incident-report change surfaces the new
# hash to pin.
golden:
	$(GO) test -run TestDynReplayGolden -count=1 -v ./internal/incident/

# verify is the full pre-merge gate: compile, static checks, formatting,
# the plain suite, the race-enabled suite (which covers the pipeline
# cancellation, simulation-abort and pool-shutdown tests), the Dyn-replay
# golden test, and the example builds.
verify: build vet fmt test race golden examples

# bench runs the headline metric benchmarks (Figure 5/6 renders plus the
# batched C_p/I_p engine microbenchmarks) and writes BENCH_metrics.json,
# then the staged measurement pipeline benchmark into BENCH_pipeline.json.
bench:
	./docs/bench.sh

# bench-pipeline runs only the scale-10K measurement pipeline benchmark.
bench-pipeline:
	./docs/bench.sh pipeline

# bench-incident runs only the incident-engine sweep benchmark and rewrites
# BENCH_incident.json.
bench-incident:
	./docs/bench.sh incident
