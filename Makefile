GO ?= go

.PHONY: all build test vet fmt examples race golden verify alloc-guards docs-check bench bench-pipeline bench-incident bench-delta bench-chain bench-scale bench-compare loadtest loadtest-smoke scale-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet covers every package in the module, example programs included (they
# carry no build tags, so the bare invocation reaches them).
vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) when any tracked Go file is not
# gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# examples compiles every standalone example program.
examples:
	$(GO) build ./examples/...

race:
	$(GO) test -race ./...

# golden re-runs the byte-pinning tests on their own (-count=1 bypasses the
# test cache) so an intentional report-shape change surfaces the new hashes
# to pin: the Dyn replay, the mc-baseline Monte-Carlo sweep, and the K=25
# mitigation plan.
golden:
	$(GO) test -run 'Golden' -count=1 -v ./internal/incident/

# alloc-guards re-runs the allocation-budget tests on their own (-count=1
# bypasses the test cache): resolver cache hits, interner hit paths and the
# compiled CDN-map matcher must stay within their per-op budgets.
alloc-guards:
	$(GO) test -run 'Alloc' -count=1 ./internal/resolver/ ./internal/measure/ ./internal/intern/

# docs-check re-runs the documentation drift tests on their own (-count=1
# bypasses the test cache): every relative link/anchor in the curated docs
# must resolve, and every flag documented in a flag table must exist in a
# cmd/ binary.
docs-check:
	$(GO) test -run 'TestDoc' -count=1 .

# verify is the full pre-merge gate: compile, static checks, formatting
# (gofmt -l walks the whole tree, internal/intern included), the plain
# suite, the race-enabled suite (which covers the pipeline cancellation,
# simulation-abort and pool-shutdown tests), the golden byte-pinning tests,
# the allocation budgets, the example builds, the documentation drift
# checks, a small end-to-end load smoke of the query API (depserver +
# depload, scale 300, 1s), and the memory-budget smoke of the streaming
# engine (50K -compact run: completes under a workable budget, fails fast
# under an impossible one).
verify: build vet fmt test race golden examples alloc-guards docs-check loadtest-smoke scale-smoke

# loadtest runs the recorded serve load measurement: a prewarmed depserver
# at scale 2000 driven by cmd/depload over the default endpoint mix, with
# measured qps and p50/p99 latency rewritten into BENCH_serve.json.
loadtest:
	./docs/bench.sh serve

# loadtest-smoke is the CI-sized serve exercise wired into verify: tiny
# world, 1s timed phase, fails on any failed request; writes no record.
loadtest-smoke:
	./docs/bench.sh serve-smoke

# bench runs the headline metric benchmarks (Figure 5/6 renders plus the
# batched C_p/I_p engine microbenchmarks) and writes BENCH_metrics.json,
# then the staged measurement pipeline benchmark into BENCH_pipeline.json.
bench:
	./docs/bench.sh

# bench-pipeline runs only the scale-10K measurement pipeline benchmark.
bench-pipeline:
	./docs/bench.sh pipeline

# bench-incident runs only the incident-engine sweep benchmark and rewrites
# BENCH_incident.json.
bench-incident:
	./docs/bench.sh incident

# bench-delta runs the incremental graph engine benchmark (single-site delta
# vs full rebuild at 2K/100K), rewrites BENCH_delta.json, and fails unless
# the 100K delta arm beats the rebuild arm by >= 10x.
bench-delta:
	./docs/bench.sh delta

# bench-chain runs the chain-enabled measurement pipeline benchmark (2K and
# paper-scale 100K arms) and rewrites BENCH_chain.json.
bench-chain:
	./docs/bench.sh chain

# bench-scale runs the columnar-engine scale benchmarks: the pointer-vs-
# compact bytes_per_site comparison at 100K and the 1M-site end-to-end run
# under an 8GiB budget. Rewrites BENCH_scale.json and fails unless the
# compact graph holds a >= 4x bytes/site advantage. The 1M arm takes
# minutes — this target is deliberately not part of `make bench`.
bench-scale:
	./docs/bench.sh scale

# scale-smoke is the CI-sized memory-budget exercise wired into verify: a
# 50K -compact depscope run must complete under 4GiB and fail fast (with
# the greppable budget error) under 32MiB; writes no record.
scale-smoke:
	./docs/bench.sh scale-smoke

# bench-compare reruns every recorded benchmark and diffs ns/op against the
# committed BENCH_*.json records; any benchmark more than 10% slower than
# its record fails the target. No record file is rewritten.
bench-compare:
	./docs/bench.sh compare
