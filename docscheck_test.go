package depscope

// Documentation drift checks, wired into `make docs-check` (and through it
// into `make verify`). Two invariants:
//
//   - every relative markdown link (and its #anchor, if any) in the curated
//     docs resolves to a real file and a real heading;
//   - every flag documented in a flag table (`| `-name ...` rows) is an
//     actual flag.Xxx("name", ...) definition in some cmd/ binary.
//
// Both walk the committed sources, so they need no network and no build
// artifacts; a doc edit that invents a flag or breaks a link fails go test.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

// curatedDocs returns the markdown files whose links and flag tables are
// kept in sync with the code: the top-level narrative docs plus docs/*.md.
// Reference dumps (PAPER.md, PAPERS.md, SNIPPETS.md) and the transient
// ISSUE.md are deliberately excluded.
func curatedDocs(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md"}
	extra, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	return append(files, extra...)
}

// slugify reduces a heading to its GitHub anchor: lowercase, punctuation
// stripped, spaces replaced by hyphens.
func slugify(heading string) string {
	heading = strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}

// headingAnchors returns the set of GitHub anchor slugs for every markdown
// heading in the file, skipping fenced code blocks (where a leading # is a
// shell comment, not a heading).
func headingAnchors(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == line || !strings.HasPrefix(text, " ") {
			continue
		}
		// GitHub drops inline-code backticks before slugging.
		anchors[slugify(strings.ReplaceAll(text, "`", ""))] = true
	}
	return anchors
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve checks that every relative link in the curated docs
// points at an existing file, and that every #anchor names a real heading
// in its target.
func TestDocLinksResolve(t *testing.T) {
	for _, doc := range curatedDocs(t) {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("read %s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			link := m[1]
			if strings.Contains(link, "://") || strings.HasPrefix(link, "mailto:") {
				continue
			}
			target, anchor := link, ""
			if i := strings.IndexByte(link, '#'); i >= 0 {
				target, anchor = link[:i], link[i+1:]
			}
			resolved := doc // same-file anchor
			if target != "" {
				resolved = filepath.Join(filepath.Dir(doc), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", doc, link, err)
					continue
				}
			}
			if anchor == "" || !strings.HasSuffix(resolved, ".md") {
				continue
			}
			if !headingAnchors(t, resolved)[anchor] {
				t.Errorf("%s: link %q: no heading in %s slugs to #%s", doc, link, resolved, anchor)
			}
		}
	}
}

var (
	flagDef = regexp.MustCompile(`flag\.(?:Bool|Int|Int64|Uint|Uint64|String|Duration|Float64)\("([a-zA-Z0-9-]+)"`)
	flagDoc = regexp.MustCompile("`-([a-zA-Z0-9-]+)")
)

// TestDocumentedFlagsExist checks that every flag named in a flag-table row
// (lines of the form "| `-name ...`") of the curated docs is defined by
// some binary under cmd/ — catching tables that drift from the code.
func TestDocumentedFlagsExist(t *testing.T) {
	sources, err := filepath.Glob("cmd/*/*.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) == 0 {
		t.Fatal("no cmd/ sources found")
	}
	defined := map[string]bool{}
	for _, src := range sources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range flagDef.FindAllStringSubmatch(string(data), -1) {
			defined[m[1]] = true
		}
	}
	if len(defined) == 0 {
		t.Fatal("no flag definitions found under cmd/")
	}
	for _, doc := range curatedDocs(t) {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("read %s: %v", doc, err)
		}
		for n, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "| `-") {
				continue
			}
			for _, m := range flagDoc.FindAllStringSubmatch(line, -1) {
				if !defined[m[1]] {
					t.Errorf("%s:%d: documents flag -%s, which no cmd/ binary defines", doc, n+1, m[1])
				}
			}
		}
	}
}
